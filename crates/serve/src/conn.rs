//! The per-connection state machine the reactor drives — and the
//! deterministic [`Transport`] seam that lets tests drive it without
//! sockets.
//!
//! One connection is a little state machine:
//!
//! ```text
//!             frame complete, admitted        response enqueued
//!   Reading ───────────────────────▶ Dispatching ─────────▶ Writing
//!      ▲                                │                      │
//!      │                  response flushed                     │
//!      └───────────────────────────────┼───────────────────────┘
//!                                      │ subscribe / unsubscribe
//!                                      ▼
//!                                 Subscribed
//!                                │
//!        shutdown / wire error / │ sever-after-write / eviction
//!                                ▼
//!                            Draining ──▶ Closed
//! ```
//!
//! `Subscribed` is the live-tail state: the connection keeps its read
//! interest (an `UNSUBSCRIBE` or EOF may arrive at any time) while
//! server-pushed `EVENT` frames flush through the same outgoing queue
//! and [`WriteShape`] machinery as ordinary responses — pushes
//! interleave with request handling instead of replacing it, and the
//! write-stall budget applies to a wedged subscriber exactly as it
//! does to a wedged response reader.
//!
//! Everything here is *nonblocking and byte-boundary honest*: reads
//! arrive in arbitrary fragments (a length prefix split across two
//! reads, a body delivered one byte at a time), writes may accept
//! fewer bytes than offered or none at all, and the machine must make
//! progress exactly when the transport does. The [`FrameDecoder`]
//! owns reassembly; [`Conn`] owns interest (does it want readability,
//! writability, neither), stall accounting, and the outgoing frame
//! queue with its fault-injection [`WriteShape`]s.
//!
//! The seam is the point: the reactor drives a `Conn<TcpStream>`, the
//! FSM test suite drives a `Conn<ScriptedTransport>` byte by byte
//! with no sockets and no sleeps, and the two are the same code.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};

use crate::wire::{WireError, MAX_FRAME, MIN_BODY};

/// The byte pipe a connection state machine runs over. Implementors
/// must behave like a nonblocking socket: `read`/`write` return
/// `Ok(0)` for EOF (reads) or a closed peer, `Ok(n)` for partial
/// progress, and `ErrorKind::WouldBlock` when no progress is possible
/// right now. [`TcpStream`] in nonblocking mode is the production
/// implementor; tests script their own.
pub trait Transport {
    /// Reads up to `buf.len()` bytes; `Ok(0)` is EOF.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Writes a prefix of `buf`, returning how much was accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Severs the connection immediately (both directions,
    /// best-effort) — the `CutAfter` fault and the stall cutoff.
    fn sever(&mut self);
}

impl Transport for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        Read::read(self, buf)
    }
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Write::write(self, buf)
    }
    fn sever(&mut self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

/// Incremental reassembly of length-prefixed `wrl-wire/v1` frames
/// from arbitrarily fragmented reads. Mirrors the blocking
/// [`crate::wire::read_frame`] exactly: a length prefix outside
/// `MIN_BODY..=MAX_FRAME` is a typed error before any oversized
/// allocation, and everything else is pure buffering — the decoder
/// never looks inside a body (CRC and opcode checks happen at
/// dispatch).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Length-prefix bytes collected so far (< 4 while incomplete).
    len: Vec<u8>,
    /// Body bytes collected so far; capacity bounded by the checked
    /// length prefix.
    body: Vec<u8>,
    /// Expected body length once the prefix is complete.
    want: usize,
}

impl FrameDecoder {
    /// A decoder at the start of a frame boundary.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Whether the decoder is mid-frame — some bytes of a frame have
    /// arrived but not all. This is what distinguishes a harmless
    /// idle connection from a peer stalled mid-frame (only the latter
    /// counts against the stall budget).
    pub fn mid_frame(&self) -> bool {
        !self.len.is_empty()
    }

    /// Feeds one fragment, appending any completed bodies (length
    /// prefix stripped, CRC not yet checked) to `out` in arrival
    /// order. A fragment may complete zero, one, or several frames.
    /// An out-of-range length prefix is a typed [`WireError`]; the
    /// decoder is then poisoned (framing can no longer be trusted)
    /// and the caller must drop the connection.
    pub fn feed(&mut self, mut chunk: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), WireError> {
        while !chunk.is_empty() {
            if self.len.len() < 4 {
                let take = chunk.len().min(4 - self.len.len());
                self.len.extend_from_slice(&chunk[..take]);
                chunk = &chunk[take..];
                if self.len.len() < 4 {
                    return Ok(());
                }
                let want = u32::from_le_bytes(self.len[..].try_into().unwrap());
                if (want as usize) > MAX_FRAME {
                    return Err(WireError::TooLarge(want));
                }
                if (want as usize) < MIN_BODY {
                    return Err(WireError::Malformed("frame length out of range"));
                }
                self.want = want as usize;
                self.body = Vec::with_capacity(self.want.min(1 << 16));
            }
            let take = chunk.len().min(self.want - self.body.len());
            self.body.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.body.len() == self.want {
                out.push(std::mem::take(&mut self.body));
                self.len.clear();
                self.want = 0;
            }
        }
        Ok(())
    }
}

/// Where in its lifecycle a connection is. Tests assert on these;
/// the reactor derives poll interest from them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Waiting for (or mid-way through) a request frame.
    Reading,
    /// A complete request was handed off; no reads until its
    /// response is enqueued (requests on one connection are served
    /// in order, like the thread-per-connection server before).
    Dispatching,
    /// Flushing a response; back to `Reading` when the queue drains.
    Writing,
    /// Attached to the live feed: pushed `EVENT` frames flush through
    /// the outgoing queue while the read side stays open for an
    /// `UNSUBSCRIBE` (or a goodbye EOF). An empty queue parks here —
    /// it does not fall back to `Reading`.
    Subscribed,
    /// Flushing final frames, then closing — no further reads.
    Draining,
    /// Done; the reactor reaps the connection.
    Closed,
}

/// How one outgoing frame is written — the fault-injection seam's
/// write-path half. The default shape writes as fast as the
/// transport accepts.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteShape {
    /// Write at most this many bytes per writability event — the
    /// `wire.partial` fault (short writes), and a real-world model of
    /// a congested peer.
    pub max_chunk: Option<usize>,
    /// After `at` bytes of this frame are out, pause for `ticks`
    /// reactor ticks before writing more — the `wire.stall` fault
    /// (mid-frame stall).
    pub stall: Option<(usize, u32)>,
}

/// One queued outgoing frame.
struct Outgoing {
    buf: Vec<u8>,
    at: usize,
    shape: WriteShape,
    /// Stall already taken (the shape fires once).
    stalled: bool,
    /// Sever the connection right after this frame — `CutAfter`
    /// delivers a truncated buffer with this set.
    sever_after: bool,
}

/// What one readability event produced, beyond buffered frames.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadEvent {
    /// Progress (possibly zero new frames); connection stays open.
    Open,
    /// Clean EOF at a frame boundary.
    Eof,
    /// Peer vanished mid-frame.
    MidFrameEof,
    /// The length prefix was out of range — framing is untrustworthy.
    BadFrame(WireError),
}

/// What a tick decided about a connection.
#[derive(Debug, PartialEq, Eq)]
pub enum TickVerdict {
    /// Within budget.
    Ok,
    /// Stall budget exhausted mid-frame — the connection was severed.
    CutOff,
}

/// Byte-level statistics one event pass produced, for the
/// `serve.reactor.*` counters (the conn layer stays metrics-free so
/// tests need no registry).
#[derive(Debug, Default, PartialEq, Eq)]
pub struct IoTally {
    /// Reads that left a frame incomplete (fragmented arrival).
    pub partial_reads: u64,
    /// Writes that flushed only part of the pending frame.
    pub partial_writes: u64,
}

/// The per-connection state machine. Generic over [`Transport`] so
/// the deterministic test suite drives it byte-by-byte; the reactor
/// instantiates it with a nonblocking [`TcpStream`].
pub struct Conn<T: Transport> {
    t: T,
    dec: FrameDecoder,
    state: ConnState,
    /// Complete request bodies not yet handed to dispatch.
    ready: VecDeque<Vec<u8>>,
    out: VecDeque<Outgoing>,
    /// Read-side stalls (ticks mid-frame without progress).
    read_stalls: u32,
    /// Write-side stalls (ticks with pending output and no progress).
    write_stalls: u32,
    /// Injected stall: ticks left before writing may resume.
    pause_ticks: u32,
    read_progress: bool,
    write_progress: bool,
    max_read_stalls: u32,
    max_write_stalls: u32,
}

impl<T: Transport> Conn<T> {
    /// Wraps a transport in a fresh state machine. The budgets bound
    /// how many reactor ticks a peer may stall mid-frame (reads) or
    /// sit on an undrained response (writes) before being cut off.
    pub fn new(t: T, max_read_stalls: u32, max_write_stalls: u32) -> Conn<T> {
        Conn {
            t,
            dec: FrameDecoder::new(),
            state: ConnState::Reading,
            ready: VecDeque::new(),
            out: VecDeque::new(),
            read_stalls: 0,
            write_stalls: 0,
            pause_ticks: 0,
            read_progress: false,
            write_progress: false,
            max_read_stalls,
            max_write_stalls,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the reactor should poll this connection for
    /// readability: only while awaiting a request (or subscribed —
    /// an unsubscribe may arrive at any time), and only until one is
    /// buffered (one request is in flight per connection at a time).
    pub fn wants_read(&self) -> bool {
        matches!(self.state, ConnState::Reading | ConnState::Subscribed) && self.ready.is_empty()
    }

    /// Whether the reactor should poll for writability: there are
    /// bytes to flush and no injected pause in force.
    pub fn wants_write(&self) -> bool {
        matches!(
            self.state,
            ConnState::Writing | ConnState::Subscribed | ConnState::Draining
        ) && !self.out.is_empty()
            && self.pause_ticks == 0
    }

    /// Handles one readability event: reads until the transport
    /// blocks, EOF, or a frame completes. Buffered request bodies are
    /// retrieved with [`Conn::take_frame`].
    pub fn on_readable(&mut self, tally: &mut IoTally) -> ReadEvent {
        if !matches!(self.state, ConnState::Reading | ConnState::Subscribed) {
            return ReadEvent::Open;
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.t.read(&mut buf) {
                Ok(0) => {
                    let ev = if self.dec.mid_frame() {
                        ReadEvent::MidFrameEof
                    } else if self.ready.is_empty() {
                        ReadEvent::Eof
                    } else {
                        // Frames arrived with the EOF; serve them,
                        // the next read pass reports the EOF.
                        return ReadEvent::Open;
                    };
                    self.close();
                    return ev;
                }
                Ok(n) => {
                    self.read_progress = true;
                    self.read_stalls = 0;
                    let mut done = Vec::new();
                    if let Err(e) = self.dec.feed(&buf[..n], &mut done) {
                        self.state = ConnState::Draining;
                        return ReadEvent::BadFrame(e);
                    }
                    self.ready.extend(done);
                    if !self.ready.is_empty() {
                        // Enough for now — one request at a time.
                        return ReadEvent::Open;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.dec.mid_frame() {
                        tally.partial_reads += 1;
                    }
                    return ReadEvent::Open;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close();
                    return ReadEvent::MidFrameEof;
                }
            }
        }
    }

    /// Takes the next buffered complete request body, moving the
    /// machine to `Dispatching`. Returns `None` when no full frame is
    /// buffered (or the connection is past reading). A subscribed
    /// connection stays `Subscribed` — its frames are handled inline
    /// on the event thread without parking the push path.
    pub fn take_frame(&mut self) -> Option<Vec<u8>> {
        match self.state {
            ConnState::Reading => {
                let body = self.ready.pop_front()?;
                self.state = ConnState::Dispatching;
                Some(body)
            }
            ConnState::Subscribed => self.ready.pop_front(),
            _ => None,
        }
    }

    /// Enqueues one encoded response frame for writing. `sever_after`
    /// cuts the connection as soon as the (possibly truncated) buffer
    /// is out — the `CutAfter` fault. Moves `Dispatching`/`Reading`
    /// to `Writing`; draining and subscribed connections keep their
    /// state (pushes interleave, drains stick).
    pub fn enqueue(&mut self, buf: Vec<u8>, shape: WriteShape, sever_after: bool) {
        if self.state == ConnState::Closed {
            return;
        }
        self.out.push_back(Outgoing {
            buf,
            at: 0,
            shape,
            stalled: false,
            sever_after,
        });
        if !matches!(self.state, ConnState::Draining | ConnState::Subscribed) {
            self.state = ConnState::Writing;
        }
    }

    /// Enqueues one live-feed push frame on a subscribed connection,
    /// unless the subscriber already has `bound` frames queued — then
    /// nothing is enqueued and `false` is returned, and the caller
    /// evicts the slow consumer (typed disconnect). Must only be
    /// called while [`ConnState::Subscribed`].
    pub fn try_push(&mut self, buf: Vec<u8>, shape: WriteShape, bound: usize) -> bool {
        debug_assert_eq!(self.state, ConnState::Subscribed);
        if self.out.len() >= bound.max(1) {
            return false;
        }
        self.enqueue(buf, shape, false);
        true
    }

    /// Queued outgoing frames not yet fully flushed — the depth the
    /// per-subscriber queue bound is measured against.
    pub fn out_depth(&self) -> usize {
        self.out.len()
    }

    /// Marks the connection subscribed (from inline dispatch of a
    /// `SUBSCRIBE` request). Pending output keeps flushing; the read
    /// side stays open.
    pub fn mark_subscribed(&mut self) {
        if !matches!(self.state, ConnState::Closed | ConnState::Draining) {
            self.state = ConnState::Subscribed;
        }
    }

    /// Returns a subscribed connection to ordinary request/response
    /// service (inline dispatch of `UNSUBSCRIBE`): pending pushes
    /// still flush, then the machine reads the next request.
    pub fn mark_unsubscribed(&mut self) {
        if self.state == ConnState::Subscribed {
            self.state = if self.out.is_empty() {
                ConnState::Reading
            } else {
                ConnState::Writing
            };
            self.read_stalls = 0;
        }
    }

    /// Handles one writability event: flushes queued frames until the
    /// transport blocks, honouring each frame's [`WriteShape`].
    /// Returns the total bytes written (the `serve.bytes.out`
    /// accounting the caller owns).
    pub fn on_writable(&mut self, tally: &mut IoTally) -> u64 {
        let mut total = 0u64;
        while let Some(cur) = self.out.front_mut() {
            if self.pause_ticks > 0 {
                break;
            }
            // Fire the one-shot mid-frame stall when the write
            // position reaches its offset.
            if let Some((at, ticks)) = cur.shape.stall {
                if !cur.stalled && cur.at >= at.min(cur.buf.len()) {
                    cur.stalled = true;
                    if ticks > 0 {
                        self.pause_ticks = ticks;
                        break;
                    }
                }
            }
            if cur.at == cur.buf.len() {
                let sever = cur.sever_after;
                self.out.pop_front();
                if sever {
                    self.close();
                    return total;
                }
                continue;
            }
            let mut end = match cur.shape.max_chunk {
                Some(c) => (cur.at + c.max(1)).min(cur.buf.len()),
                None => cur.buf.len(),
            };
            if let Some((at, _)) = cur.shape.stall {
                if !cur.stalled {
                    // Never write past an unfired stall point, so the
                    // pause lands mid-frame even on a transport that
                    // would swallow the whole buffer.
                    end = end.min(at.min(cur.buf.len()).max(cur.at));
                }
            }
            match self.t.write(&cur.buf[cur.at..end]) {
                Ok(0) => {
                    // A zero-byte write is a closed peer.
                    self.close();
                    return total;
                }
                Ok(n) => {
                    cur.at += n;
                    total += n as u64;
                    self.write_progress = true;
                    self.write_stalls = 0;
                    if cur.at < cur.buf.len() {
                        tally.partial_writes += 1;
                        if cur.shape.max_chunk.is_some() {
                            // One shaped chunk per writability event:
                            // this is what makes `wire.partial` a
                            // genuine short-write storm rather than a
                            // single capped loop.
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    tally.partial_writes += 1;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close();
                    return total;
                }
            }
        }
        if self.out.is_empty() {
            match self.state {
                ConnState::Writing => {
                    self.state = ConnState::Reading;
                    self.read_stalls = 0;
                }
                ConnState::Draining => self.close(),
                // Subscribed parks on an empty queue: the next push
                // (or the unsubscribe ack) re-arms write interest.
                _ => {}
            }
        }
        total
    }

    /// One reactor tick: advances injected pauses and charges the
    /// stall budgets. A peer stalled mid-frame (reading) or sitting
    /// on an undrained response (writing) for more ticks than its
    /// budget is severed — the bound that keeps a wedged peer from
    /// pinning reactor state forever. Idle connections *between*
    /// frames are never charged.
    pub fn on_tick(&mut self) -> TickVerdict {
        if self.pause_ticks > 0 {
            self.pause_ticks -= 1;
            self.read_progress = false;
            self.write_progress = false;
            return TickVerdict::Ok;
        }
        let mut cut = false;
        if matches!(self.state, ConnState::Reading | ConnState::Subscribed)
            && self.dec.mid_frame()
            && !self.read_progress
        {
            self.read_stalls += 1;
            cut |= self.read_stalls > self.max_read_stalls;
        }
        if !self.out.is_empty() && !self.write_progress {
            self.write_stalls += 1;
            cut |= self.write_stalls > self.max_write_stalls;
        }
        self.read_progress = false;
        self.write_progress = false;
        if cut {
            self.close();
            TickVerdict::CutOff
        } else {
            TickVerdict::Ok
        }
    }

    /// Begins a graceful drain: no more reads; pending output (if
    /// any) flushes, then the connection closes. Dispatching
    /// connections are left alone — their response is still owed and
    /// will drain through the normal write path.
    pub fn begin_drain(&mut self) {
        match self.state {
            ConnState::Closed | ConnState::Dispatching => {}
            _ if self.out.is_empty() => self.close(),
            _ => self.state = ConnState::Draining,
        }
    }

    /// Whether any buffered request body is ready for dispatch.
    pub fn has_frame(&self) -> bool {
        matches!(self.state, ConnState::Reading | ConnState::Subscribed) && !self.ready.is_empty()
    }

    fn close(&mut self) {
        if self.state != ConnState::Closed {
            self.t.sever();
            self.state = ConnState::Closed;
            self.out.clear();
            self.ready.clear();
        }
    }

    /// Immediate teardown (reactor shutdown edge cases).
    pub fn force_close(&mut self) {
        self.close();
    }

    /// The underlying transport (the reactor needs the fd).
    pub fn transport(&self) -> &T {
        &self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_reassembles_across_any_fragmentation() {
        let frame = crate::wire::encode_request(9, &crate::wire::Request::Catalog);
        for step in 1..frame.len() {
            let mut dec = FrameDecoder::new();
            let mut out = Vec::new();
            for chunk in frame.chunks(step) {
                dec.feed(chunk, &mut out).unwrap();
            }
            assert_eq!(out.len(), 1, "step={step}");
            assert_eq!(out[0], frame[4..].to_vec(), "step={step}");
            assert!(!dec.mid_frame());
        }
    }

    #[test]
    fn decoder_rejects_out_of_range_lengths_before_allocating() {
        let mut out = Vec::new();
        let mut dec = FrameDecoder::new();
        assert!(matches!(
            dec.feed(&u32::MAX.to_le_bytes(), &mut out),
            Err(WireError::TooLarge(_))
        ));
        let mut dec = FrameDecoder::new();
        assert!(matches!(
            dec.feed(&3u32.to_le_bytes(), &mut out),
            Err(WireError::Malformed(_))
        ));
        assert!(out.is_empty());
    }
}
