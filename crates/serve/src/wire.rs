//! The `wrl-wire/v1` framing and message codec.
//!
//! Every message — request or response — travels in one
//! length-prefixed, CRC-framed binary frame:
//!
//! ```text
//! frame    := u32 len, body            len = |body|, ≤ MAX_FRAME
//! body     := u64 req_id, u8 opcode, payload, u32 crc32(req_id ‥ payload)
//! string   := u16 len, utf-8 bytes
//! opt<T>   := u8 0 | u8 1, T
//!
//! request  := 0x01 catalog  {}
//!           | 0x02 fetch    { archive: string, first_block: u32, n_blocks: u32 }
//!           | 0x03 query    { archive: string, asid: opt<u8>,
//!                             window: opt<{ lo: u64, hi: u64 }> }
//!           | 0x04 metrics  {}
//!           | 0x05 shards   {}
//!           | 0x06 subscribe   { archive: string, asid: opt<u8>,
//!                                window: opt<{ lo: u64, hi: u64 }>,
//!                                from_start: u8 0|1 }
//!           | 0x07 unsubscribe {}
//! response := 0x81 catalog  { u32 n, entry × n }
//!           | 0x82 fetch    { u32 n, raw_block × n }
//!           | 0x83 query    { blocks_decoded: u32, blocks_skipped: u32,
//!                             u64 n_words, u32 word × n_words }
//!           | 0x84 metrics  { json: string32 }      (wrl-obs-metrics/v1)
//!           | 0x85 shards   { u32 n, shard_status × n }
//!           | 0x86 subscribed   {}
//!           | 0x87 unsubscribed {}
//!           | 0x7d event    { seq: u64, u32 n_words, u32 word × n_words }
//!           | 0x7e busy     {}
//!           | 0x7f error    { code: u16, msg: string }
//! ```
//!
//! `event` frames are server-initiated pushes on a subscribed
//! connection: their request id echoes the *subscribe* request's id,
//! `seq` is the offset of the frame's first word within the
//! predicate-filtered stream, and a zero-word event marks the end of
//! the live feed.
//!
//! All integers are little-endian, matching the store container. The
//! CRC-32 (the store codec's polynomial) covers the request id, the
//! opcode and the payload, so a flipped bit anywhere in a frame is a
//! typed [`WireError::CrcMismatch`] — never a silently different
//! message, the §4.3 rule extended over the network. The length
//! prefix is capped at [`MAX_FRAME`] so a corrupted length can cost
//! at most one bounded allocation before the CRC catches it.

use wrl_store::{crc32_bytes, Predicate, QueryResult};

/// Protocol identifier; bumped on any incompatible framing change.
pub const WIRE_SCHEMA: &str = "wrl-wire/v1";

/// Hard cap on one frame's body, bounding the allocation a length
/// prefix can demand (64 MiB holds a ~16M-word query response).
pub const MAX_FRAME: usize = 64 << 20;

/// Smallest legal body: request id, opcode, empty payload, CRC.
pub const MIN_BODY: usize = 8 + 1 + 4;

/// Request opcodes (responses are `opcode | 0x80`).
pub mod op {
    /// List the archives the server holds.
    pub const CATALOG: u8 = 0x01;
    /// Fetch a range of raw compressed blocks with their index entries.
    pub const FETCH: u8 = 0x02;
    /// Windowed decode with predicate pushdown.
    pub const QUERY: u8 = 0x03;
    /// `wrl-obs-metrics/v1` JSON snapshot of the server's registry.
    pub const METRICS: u8 = 0x04;
    /// The shard table behind a fabric coordinator (per-shard block
    /// counts, zonemaps and endpoint health). Non-coordinator servers
    /// answer `error(bad_request)`.
    pub const SHARDS: u8 = 0x05;
    /// Attach this connection to the server's live feed: every word
    /// the feed publishes that the request's predicate admits is
    /// pushed back in `EVENT` frames until the feed ends or the
    /// client unsubscribes.
    pub const SUBSCRIBE: u8 = 0x06;
    /// Detach from the live feed; the connection returns to ordinary
    /// request/response service.
    pub const UNSUBSCRIBE: u8 = 0x07;
    /// Server-initiated push on a subscribed connection: a batch of
    /// predicate-filtered live words. A zero-word event marks the end
    /// of the feed. Never sent as a reply to a request frame.
    pub const EVENT: u8 = 0x7d;
    /// Response bit: a response's opcode is the request's, ORed in.
    pub const RESPONSE: u8 = 0x80;
    /// The admission gate refused the request; retry later.
    pub const BUSY: u8 = 0x7e;
    /// The request failed; payload carries code and message.
    pub const ERROR: u8 = 0x7f;
}

/// Error codes carried by an `error` response.
pub mod err {
    /// The named archive is not in the server's catalog.
    pub const NO_SUCH_ARCHIVE: u16 = 1;
    /// The request frame decoded but asked something unserviceable
    /// (bad block range, oversized response).
    pub const BAD_REQUEST: u16 = 2;
    /// The store failed server-side (codec, CRC) — the §4.3 outcome
    /// reported to the client instead of a wrong answer.
    pub const STORE: u16 = 3;
    /// The request frame itself was malformed or failed its CRC.
    pub const WIRE: u16 = 4;
    /// A fabric shard and every replica of it are unreachable — the
    /// coordinator's typed answer when failover runs out of
    /// endpoints, distinct from a severed upstream connection.
    pub const UNAVAILABLE: u16 = 5;
    /// A subscriber fell further behind the live feed than the
    /// server's per-subscriber queue bound allows; the server sends
    /// this typed disconnect and drains the connection instead of
    /// buffering without limit.
    pub const SLOW_CONSUMER: u16 = 6;
    /// A `from_start` subscribe reached a live feed whose oldest
    /// words the retention bound already evicted — the complete
    /// replay the client asked for no longer exists, so the server
    /// refuses rather than ship a silently truncated stream.
    pub const RETENTION_EVICTED: u16 = 7;
}

/// A decoded request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// List the archives the server holds.
    Catalog,
    /// Fetch `n_blocks` raw compressed blocks starting at
    /// `first_block`, with their index entries.
    Fetch {
        /// Catalog name of the archive.
        archive: String,
        /// First block of the range.
        first_block: u32,
        /// Number of blocks.
        n_blocks: u32,
    },
    /// Decode and filter server-side, shipping only matching words.
    Query {
        /// Catalog name of the archive.
        archive: String,
        /// The word filter (pushed down to the block index).
        pred: Predicate,
    },
    /// Snapshot the server's metrics registry.
    Metrics,
    /// List the shards behind a fabric coordinator.
    Shards,
    /// Attach to the server's live feed, receiving `EVENT` pushes for
    /// every published word the predicate admits.
    Subscribe {
        /// Name of the live feed (the archive being traced).
        archive: String,
        /// The word filter applied server-side before fan-out.
        pred: Predicate,
        /// `true` replays the feed from its first word (catch-up
        /// before live pushes); `false` starts at the next word the
        /// feed publishes.
        from_start: bool,
    },
    /// Detach from the live feed.
    Unsubscribe,
}

impl Request {
    /// The request's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Catalog => op::CATALOG,
            Request::Fetch { .. } => op::FETCH,
            Request::Query { .. } => op::QUERY,
            Request::Metrics => op::METRICS,
            Request::Shards => op::SHARDS,
            Request::Subscribe { .. } => op::SUBSCRIBE,
            Request::Unsubscribe => op::UNSUBSCRIBE,
        }
    }
}

/// One shard's row in a coordinator's shards response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStatus {
    /// Downstream catalog name of the shard archive.
    pub name: String,
    /// Endpoints configured for the shard (primary + replicas).
    pub endpoints: u16,
    /// Bitmap of endpoints currently believed reachable (bit i =
    /// endpoint i; updated by failover outcomes).
    pub alive: u16,
    /// Blocks the shard owns.
    pub n_blocks: u32,
    /// Words across the shard's blocks.
    pub n_words: u64,
    /// OR of the shard's per-block ASID zonemaps (0 = unknown).
    pub asid_mask: u64,
}

/// One archive's row in a catalog response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Catalog name (what fetch/query requests reference).
    pub name: String,
    /// Total trace words.
    pub n_words: u64,
    /// Block count.
    pub n_blocks: u32,
    /// Nominal words per block.
    pub block_words: u32,
    /// Compressed block-area size in bytes.
    pub compressed_bytes: u64,
}

/// One raw block in a fetch response: the index entry plus the
/// compressed bytes, so the client can decompress and verify the
/// CRC itself — the store's end-to-end integrity check survives the
/// network hop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawBlock {
    /// Decoded word count.
    pub words: u32,
    /// CRC-32 over the decoded words.
    pub crc: u32,
    /// ASID context at the block's first word.
    pub first_asid: u8,
    /// ASID context after the block's last word.
    pub last_asid: u8,
    /// Summary flags (see [`wrl_store::BlockMeta`]).
    pub flags: u8,
    /// Global word offset of the block's first word.
    pub first_word: u64,
    /// Minimum data address (when the summary flag says so).
    pub min_daddr: u32,
    /// Maximum data address (when the summary flag says so).
    pub max_daddr: u32,
    /// The compressed block bytes, exactly as stored.
    pub comp: Vec<u8>,
}

impl RawBlock {
    /// Decompresses the block and verifies its words against the
    /// shipped CRC — the client-side half of the end-to-end check.
    /// The shipped flags byte carries the block coding
    /// ([`wrl_store::BlockMeta::FLAG_COLUMNAR`]), so v4 blocks
    /// fetch over the unchanged `wrl-wire/v1` frame layout.
    pub fn decode(&self) -> Result<Vec<u32>, WireError> {
        let columnar = self.flags & wrl_store::BlockMeta::FLAG_COLUMNAR != 0;
        let words = if columnar {
            wrl_store::column::decode_block(&self.comp, self.words as usize)
        } else {
            wrl_store::decompress_block(&self.comp, self.words as usize)
        }
        .map_err(|_| WireError::Malformed("fetched block fails to decompress"))?;
        let got = wrl_store::crc32_words(&words);
        if got != self.crc {
            return Err(WireError::CrcMismatch {
                want: self.crc,
                got,
            });
        }
        Ok(words)
    }
}

/// A decoded response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The server's archives, sorted by name.
    Catalog(Vec<CatalogEntry>),
    /// The requested raw blocks, in range order.
    Fetch(Vec<RawBlock>),
    /// The matching words plus the pushdown's skip counts.
    Query(QueryResult),
    /// `wrl-obs-metrics/v1` JSON.
    Metrics(String),
    /// The coordinator's shard table, in manifest order.
    Shards(Vec<ShardStatus>),
    /// Subscription accepted; `EVENT` pushes follow on this
    /// connection until the feed ends or the client unsubscribes.
    Subscribed,
    /// Unsubscribed; the connection is back in request/response
    /// service.
    Unsubscribed,
    /// A live-feed push: a batch of predicate-filtered words. The
    /// frame's request id echoes the subscribe request's id.
    Event {
        /// Offset of this batch's first word within the
        /// predicate-filtered stream.
        seq: u64,
        /// The admitted words, in feed order. Empty marks the end of
        /// the feed.
        words: Vec<u32>,
    },
    /// Admission gate full; retry later.
    Busy,
    /// The request failed with a typed code.
    Error {
        /// One of the [`err`] codes.
        code: u16,
        /// Human-readable diagnosis.
        msg: String,
    },
}

impl Response {
    /// The response's wire opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Catalog(_) => op::CATALOG | op::RESPONSE,
            Response::Fetch(_) => op::FETCH | op::RESPONSE,
            Response::Query(_) => op::QUERY | op::RESPONSE,
            Response::Metrics(_) => op::METRICS | op::RESPONSE,
            Response::Shards(_) => op::SHARDS | op::RESPONSE,
            Response::Subscribed => op::SUBSCRIBE | op::RESPONSE,
            Response::Unsubscribed => op::UNSUBSCRIBE | op::RESPONSE,
            Response::Event { .. } => op::EVENT,
            Response::Busy => op::BUSY,
            Response::Error { .. } => op::ERROR,
        }
    }
}

/// Typed wire-level failures. Every way a frame can be damaged maps
/// here — the chaos campaign's "detected" outcome for wire faults.
#[derive(Debug, PartialEq, Eq)]
pub enum WireError {
    /// Framing or payload structure is broken.
    Malformed(&'static str),
    /// The frame parsed but its CRC does not cover its bytes.
    CrcMismatch {
        /// CRC carried in the frame.
        want: u32,
        /// CRC computed over the received bytes.
        got: u32,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The opcode byte names no known message.
    UnknownOpcode(u8),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::CrcMismatch { want, got } => {
                write!(
                    f,
                    "frame CRC mismatch (framed {want:#010x}, got {got:#010x})"
                )
            }
            WireError::TooLarge(n) => write!(f, "frame length {n} exceeds cap"),
            WireError::UnknownOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Long string (metrics JSON outgrows u16).
fn put_str32(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed("truncated payload"))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str16(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| WireError::Malformed("string is not utf-8"))
    }
    fn str32(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| WireError::Malformed("string is not utf-8"))
    }
    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Encodes one whole frame — length prefix, request id, opcode,
/// payload, CRC — ready to write to a socket.
fn encode_frame(req_id: u64, opcode: u8, payload: &[u8]) -> Vec<u8> {
    let body_len = 8 + 1 + payload.len() + 4;
    let mut out = Vec::with_capacity(4 + body_len);
    put_u32(&mut out, body_len as u32);
    put_u64(&mut out, req_id);
    out.push(opcode);
    out.extend_from_slice(payload);
    let crc = crc32_bytes(&out[4..]);
    put_u32(&mut out, crc);
    out
}

/// Splits a received body into (request id, opcode, payload) after
/// checking the CRC. `body` excludes the length prefix.
fn decode_frame(body: &[u8]) -> Result<(u64, u8, &[u8]), WireError> {
    if body.len() < MIN_BODY {
        return Err(WireError::Malformed("body shorter than minimum"));
    }
    let crc_at = body.len() - 4;
    let want = u32::from_le_bytes(body[crc_at..].try_into().unwrap());
    let got = crc32_bytes(&body[..crc_at]);
    if want != got {
        return Err(WireError::CrcMismatch { want, got });
    }
    let req_id = u64::from_le_bytes(body[..8].try_into().unwrap());
    Ok((req_id, body[8], &body[9..crc_at]))
}

fn put_pred(out: &mut Vec<u8>, pred: &Predicate) {
    match pred.asid {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            out.push(a);
        }
    }
    match pred.window {
        None => out.push(0),
        Some((lo, hi)) => {
            out.push(1);
            put_u64(out, lo);
            put_u64(out, hi);
        }
    }
}

fn get_pred(c: &mut Cursor) -> Result<Predicate, WireError> {
    let asid = match c.u8()? {
        0 => None,
        1 => Some(c.u8()?),
        _ => return Err(WireError::Malformed("bad option tag")),
    };
    let window = match c.u8()? {
        0 => None,
        1 => Some((c.u64()?, c.u64()?)),
        _ => return Err(WireError::Malformed("bad option tag")),
    };
    Ok(Predicate { asid, window })
}

/// Encodes a request as one frame.
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut p = Vec::new();
    match req {
        Request::Catalog | Request::Metrics | Request::Shards | Request::Unsubscribe => {}
        Request::Fetch {
            archive,
            first_block,
            n_blocks,
        } => {
            put_str(&mut p, archive);
            put_u32(&mut p, *first_block);
            put_u32(&mut p, *n_blocks);
        }
        Request::Query { archive, pred } => {
            put_str(&mut p, archive);
            put_pred(&mut p, pred);
        }
        Request::Subscribe {
            archive,
            pred,
            from_start,
        } => {
            put_str(&mut p, archive);
            put_pred(&mut p, pred);
            p.push(u8::from(*from_start));
        }
    }
    encode_frame(req_id, req.opcode(), &p)
}

/// Decodes a request body (without length prefix), returning the
/// request id alongside.
pub fn decode_request(body: &[u8]) -> Result<(u64, Request), WireError> {
    let (req_id, opcode, payload) = decode_frame(body)?;
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let req = match opcode {
        op::CATALOG => Request::Catalog,
        op::METRICS => Request::Metrics,
        op::SHARDS => Request::Shards,
        op::FETCH => Request::Fetch {
            archive: c.str16()?,
            first_block: c.u32()?,
            n_blocks: c.u32()?,
        },
        op::QUERY => Request::Query {
            archive: c.str16()?,
            pred: get_pred(&mut c)?,
        },
        op::SUBSCRIBE => Request::Subscribe {
            archive: c.str16()?,
            pred: get_pred(&mut c)?,
            from_start: match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bad bool tag")),
            },
        },
        op::UNSUBSCRIBE => Request::Unsubscribe,
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.done()?;
    Ok((req_id, req))
}

/// Encodes a response as one frame.
pub fn encode_response(req_id: u64, resp: &Response) -> Vec<u8> {
    let mut p = Vec::new();
    match resp {
        Response::Busy | Response::Subscribed | Response::Unsubscribed => {}
        Response::Event { seq, words } => {
            put_u64(&mut p, *seq);
            put_u32(&mut p, words.len() as u32);
            // Same bulk word copy as the query response below: event
            // pushes ride the hot path of a running machine.
            let at = p.len();
            p.resize(at + words.len() * 4, 0);
            for (dst, &w) in p[at..].chunks_exact_mut(4).zip(words) {
                dst.copy_from_slice(&w.to_le_bytes());
            }
        }
        Response::Error { code, msg } => {
            put_u16(&mut p, *code);
            put_str(&mut p, msg);
        }
        Response::Catalog(entries) => {
            put_u32(&mut p, entries.len() as u32);
            for e in entries {
                put_str(&mut p, &e.name);
                put_u64(&mut p, e.n_words);
                put_u32(&mut p, e.n_blocks);
                put_u32(&mut p, e.block_words);
                put_u64(&mut p, e.compressed_bytes);
            }
        }
        Response::Fetch(blocks) => {
            put_u32(&mut p, blocks.len() as u32);
            for b in blocks {
                put_u32(&mut p, b.words);
                put_u32(&mut p, b.crc);
                p.push(b.first_asid);
                p.push(b.last_asid);
                p.push(b.flags);
                put_u64(&mut p, b.first_word);
                put_u32(&mut p, b.min_daddr);
                put_u32(&mut p, b.max_daddr);
                put_u32(&mut p, b.comp.len() as u32);
                p.extend_from_slice(&b.comp);
            }
        }
        Response::Query(q) => {
            put_u32(&mut p, q.blocks_decoded);
            put_u32(&mut p, q.blocks_skipped);
            put_u64(&mut p, q.words.len() as u64);
            // Bulk word conversion: the word array dominates a query
            // response (a 4096-word window is 16 KiB), and a
            // per-word `put_u32` loop costs more than the query
            // itself. Writing into a pre-sized tail vectorizes to a
            // copy on little-endian targets.
            let at = p.len();
            p.resize(at + q.words.len() * 4, 0);
            for (dst, &w) in p[at..].chunks_exact_mut(4).zip(&q.words) {
                dst.copy_from_slice(&w.to_le_bytes());
            }
        }
        Response::Metrics(json) => put_str32(&mut p, json),
        Response::Shards(rows) => {
            put_u32(&mut p, rows.len() as u32);
            for s in rows {
                put_str(&mut p, &s.name);
                put_u16(&mut p, s.endpoints);
                put_u16(&mut p, s.alive);
                put_u32(&mut p, s.n_blocks);
                put_u64(&mut p, s.n_words);
                put_u64(&mut p, s.asid_mask);
            }
        }
    }
    encode_frame(req_id, resp.opcode(), &p)
}

/// Decodes a response body (without length prefix), returning the
/// request id it answers.
pub fn decode_response(body: &[u8]) -> Result<(u64, Response), WireError> {
    let (req_id, opcode, payload) = decode_frame(body)?;
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let resp = match opcode {
        op::BUSY => Response::Busy,
        op::ERROR => Response::Error {
            code: c.u16()?,
            msg: c.str16()?,
        },
        op::EVENT => {
            let seq = c.u64()?;
            let n = c.u32()? as usize;
            if n != (payload.len() - c.at) / 4 {
                return Err(WireError::Malformed("word count disagrees with payload"));
            }
            let words = c
                .take(n * 4)?
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .collect();
            Response::Event { seq, words }
        }
        o if o == op::CATALOG | op::RESPONSE => {
            let n = c.u32()? as usize;
            if n > payload.len() / 4 {
                return Err(WireError::Malformed("catalog count exceeds payload"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(CatalogEntry {
                    name: c.str16()?,
                    n_words: c.u64()?,
                    n_blocks: c.u32()?,
                    block_words: c.u32()?,
                    compressed_bytes: c.u64()?,
                });
            }
            Response::Catalog(entries)
        }
        o if o == op::FETCH | op::RESPONSE => {
            let n = c.u32()? as usize;
            if n > payload.len() / 4 {
                return Err(WireError::Malformed("block count exceeds payload"));
            }
            let mut blocks = Vec::with_capacity(n);
            for _ in 0..n {
                let (words, crc) = (c.u32()?, c.u32()?);
                let (first_asid, last_asid, flags) = (c.u8()?, c.u8()?, c.u8()?);
                let first_word = c.u64()?;
                let (min_daddr, max_daddr) = (c.u32()?, c.u32()?);
                let comp_len = c.u32()? as usize;
                blocks.push(RawBlock {
                    words,
                    crc,
                    first_asid,
                    last_asid,
                    flags,
                    first_word,
                    min_daddr,
                    max_daddr,
                    comp: c.take(comp_len)?.to_vec(),
                });
            }
            Response::Fetch(blocks)
        }
        o if o == op::QUERY | op::RESPONSE => {
            let blocks_decoded = c.u32()?;
            let blocks_skipped = c.u32()?;
            let n = c.u64()? as usize;
            if n != (payload.len() - c.at) / 4 {
                return Err(WireError::Malformed("word count disagrees with payload"));
            }
            // Bulk inverse of the encoder's word copy: one bounds
            // check for the whole array instead of one per word.
            let words = c
                .take(n * 4)?
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .collect();
            Response::Query(QueryResult {
                blocks_decoded,
                blocks_skipped,
                words,
            })
        }
        o if o == op::METRICS | op::RESPONSE => Response::Metrics(c.str32()?),
        o if o == op::SUBSCRIBE | op::RESPONSE => Response::Subscribed,
        o if o == op::UNSUBSCRIBE | op::RESPONSE => Response::Unsubscribed,
        o if o == op::SHARDS | op::RESPONSE => {
            let n = c.u32()? as usize;
            if n > payload.len() / 4 {
                return Err(WireError::Malformed("shard count exceeds payload"));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(ShardStatus {
                    name: c.str16()?,
                    endpoints: c.u16()?,
                    alive: c.u16()?,
                    n_blocks: c.u32()?,
                    n_words: c.u64()?,
                    asid_mask: c.u64()?,
                });
            }
            Response::Shards(rows)
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.done()?;
    Ok((req_id, resp))
}

/// What one attempt to read a frame off a socket produced.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete body (length prefix stripped, CRC not yet checked).
    Frame(Vec<u8>),
    /// The socket is open but idle: the read timed out before any
    /// byte of a new frame arrived. Callers poll their shutdown flag
    /// and try again — this is the tick that keeps a blocked server
    /// thread responsive.
    Idle,
    /// Clean end of stream between frames.
    Eof,
}

fn is_stall(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one length-prefixed frame from `r`, which must have a read
/// timeout set: each timeout before the first byte of a frame is an
/// [`FrameRead::Idle`] tick, while a timeout *mid-frame* counts
/// against `max_stalls` — exceeding it is a hard `TimedOut` error, so
/// a peer that stops sending mid-frame can stall a thread for at most
/// `max_stalls` read-timeout ticks. Out-of-range length prefixes are
/// `InvalidData` before any allocation beyond [`MAX_FRAME`].
pub fn read_frame(r: &mut impl std::io::Read, max_stalls: u32) -> std::io::Result<FrameRead> {
    use std::io::{Error, ErrorKind};
    let mut stalls = 0u32;
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameRead::Eof)
                } else {
                    Err(ErrorKind::UnexpectedEof.into())
                }
            }
            Ok(n) => got += n,
            Err(e) if is_stall(&e) => {
                if got == 0 {
                    return Ok(FrameRead::Idle);
                }
                stalls += 1;
                if stalls > max_stalls {
                    return Err(Error::new(ErrorKind::TimedOut, "peer stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(MIN_BODY..=MAX_FRAME).contains(&len) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            WireError::Malformed("frame length out of range").to_string(),
        ));
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => got += n,
            Err(e) if is_stall(&e) => {
                stalls += 1;
                if stalls > max_stalls {
                    return Err(Error::new(ErrorKind::TimedOut, "peer stalled mid-frame"));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(7, &req);
        let (id, back) = decode_request(&frame[4..]).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, req);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Catalog);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Shards);
        roundtrip_request(Request::Fetch {
            archive: "sed".into(),
            first_block: 3,
            n_blocks: 9,
        });
        roundtrip_request(Request::Query {
            archive: "grr".into(),
            pred: Predicate {
                asid: Some(5),
                window: Some((100, 2000)),
            },
        });
        roundtrip_request(Request::Subscribe {
            archive: "sed".into(),
            pred: Predicate {
                asid: Some(2),
                window: Some((0, 4096)),
            },
            from_start: true,
        });
        roundtrip_request(Request::Subscribe {
            archive: "sed".into(),
            pred: Predicate::default(),
            from_start: false,
        });
        roundtrip_request(Request::Unsubscribe);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Busy,
            Response::Error {
                code: err::NO_SUCH_ARCHIVE,
                msg: "no archive named x".into(),
            },
            Response::Catalog(vec![CatalogEntry {
                name: "sed".into(),
                n_words: 123456,
                n_blocks: 31,
                block_words: 4096,
                compressed_bytes: 9999,
            }]),
            Response::Fetch(vec![RawBlock {
                words: 8,
                crc: 0xdead_beef,
                first_asid: 1,
                last_asid: 2,
                flags: 7,
                first_word: 4096,
                min_daddr: 0x1000,
                max_daddr: 0x2000,
                comp: vec![1, 2, 3, 4, 5],
            }]),
            Response::Query(QueryResult {
                blocks_decoded: 2,
                blocks_skipped: 40,
                words: vec![0x8003_0100, 0x102, 0x8003_0104],
            }),
            Response::Metrics("{\"schema\": \"wrl-obs-metrics/v1\"}".into()),
            Response::Subscribed,
            Response::Unsubscribed,
            Response::Event {
                seq: 12345,
                words: vec![0x8003_0100, 0x102, 0x8003_0104],
            },
            Response::Event {
                seq: 99,
                words: vec![],
            },
            Response::Shards(vec![
                ShardStatus {
                    name: "golden.s0".into(),
                    endpoints: 2,
                    alive: 0b01,
                    n_blocks: 17,
                    n_words: 4352,
                    asid_mask: 0b1011,
                },
                ShardStatus {
                    name: "golden.s1".into(),
                    endpoints: 1,
                    alive: 0b1,
                    n_blocks: 16,
                    n_words: 4096,
                    asid_mask: 0,
                },
            ]),
        ] {
            let frame = encode_response(99, &resp);
            let (id, back) = decode_response(&frame[4..]).unwrap();
            assert_eq!(id, 99);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let frame = encode_request(
            1,
            &Request::Query {
                archive: "sed".into(),
                pred: Predicate {
                    asid: Some(3),
                    window: None,
                },
            },
        );
        // Flip every bit of the body in turn: each must surface as a
        // typed error (almost always a CRC mismatch; flips inside the
        // CRC field itself also land there).
        for at in 4..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[at] ^= 1 << bit;
                assert!(
                    decode_request(&bad[4..]).is_err(),
                    "flip at byte {at} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_and_junk_bodies_are_typed_errors() {
        let frame = encode_request(1, &Request::Catalog);
        for cut in 0..frame.len() - 5 {
            assert!(decode_request(&frame[4..4 + cut]).is_err(), "cut={cut}");
        }
        assert!(matches!(
            decode_request(&[0u8; 64]),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn fetched_block_verifies_end_to_end() {
        let words: Vec<u32> = (0..100).map(|i| 0x8003_0000 + i * 4).collect();
        let comp = wrl_store::compress_block(&words);
        let mut b = RawBlock {
            words: 100,
            crc: wrl_store::crc32_words(&words),
            first_asid: 0,
            last_asid: 0,
            flags: 0,
            first_word: 0,
            min_daddr: 0,
            max_daddr: 0,
            comp,
        };
        assert_eq!(b.decode().unwrap(), words);
        b.comp[0] ^= 0xff;
        assert!(b.decode().is_err());
    }
}
