//! `wrl-serve`: a TCP trace-query service with predicate-pushdown
//! block skipping.
//!
//! The paper's trace system ends at a 64 MB in-kernel buffer drained
//! by a single analysis client (§3.3), and its traces reached other
//! researchers on tape (§3.4). This crate is the modern end of that
//! line: the compressed seekable store (`wrl-store`) already gives
//! every block an index entry — offset, CRC, ASID bounds, and (since
//! format v3) word-offset and data-address summaries — so serving
//! *windowed queries* to many concurrent clients costs only the
//! blocks a query actually touches. The pieces:
//!
//! * [`wire`] — the `wrl-wire/v1` framing: length-prefixed,
//!   CRC-framed binary messages (catalog, raw block-range fetch,
//!   windowed query, metrics snapshot). A flipped bit anywhere is a
//!   typed error, never a different message.
//! * [`conn`] — the per-connection state machine (Reading →
//!   Dispatching → Writing → Draining) over a deterministic
//!   [`Transport`] seam, honest about partial reads and writes at
//!   every byte boundary. Tests drive it byte-by-byte with scripted
//!   transports; the reactor drives it with nonblocking sockets —
//!   the same code either way.
//! * [`reactor`] — the readiness layer: `poll(2)` over nonblocking
//!   sockets on unix (declared `extern "C"`, no `libc` crate), a
//!   condvar-paced scan fallback elsewhere, and a cross-thread
//!   [`Waker`].
//! * [`server`] — the event loops on top: a few event threads
//!   multiplex every connection, a max-inflight admission gate
//!   answers `Busy` instead of queueing, a small executor pool runs
//!   admitted requests, stall budgets sever wedged peers, graceful
//!   shutdown drains in-flight requests, and the `serve.*` metric
//!   family (now with `serve.reactor.*` and `serve.sub.*`) stays
//!   accurate throughout. A [`LiveFeed`] is the on-the-fly half: a
//!   producer publishes a trace as it is generated and subscribed
//!   clients receive the predicate-filtered tail as pushed `EVENT`
//!   frames, with slow consumers evicted at a bounded queue depth.
//! * [`client`] — the synchronous client library `tracedump` and the
//!   tests use; every network failure mode is a typed [`ServeError`].
//! * [`obs`] — the `serve.*` metrics (see `docs/METRICS.md`).
//!
//! The load-bearing guarantee, extended from the store: a windowed
//! query answered over the wire is bit-identical to decoding the
//! archive locally and filtering ([`wrl_store::filter_stream`]) —
//! the loopback differential suite asserts it for every (block size
//! × predicate) combination, and the chaos campaign's wire faults
//! must all land detected or harmless.

#![deny(missing_docs)]

pub mod client;
pub mod conn;
pub mod obs;
pub mod reactor;
pub mod server;
pub mod wire;

pub use client::{Client, ClientCfg, ServeError, TailItem};
pub use conn::{
    Conn, ConnState, FrameDecoder, IoTally, ReadEvent, TickVerdict, Transport, WriteShape,
};
pub use obs::ServeObs;
pub use reactor::{Interest, Poller, Ready, Waker};
pub use server::{Catalog, LiveFeed, ServeCfg, ServeHooks, Server, WireFate};
pub use wire::{
    CatalogEntry, RawBlock, Request, Response, ShardStatus, WireError, MAX_FRAME, WIRE_SCHEMA,
};
