//! The readiness layer under the event loop: who is ready, and how a
//! sleeping event thread is woken.
//!
//! Two backends behind one API, chosen at compile time:
//!
//! * **Unix** — the real thing: `poll(2)` over the raw fds of the
//!   listener, the connections and a wake pipe (a
//!   [`std::os::unix::net::UnixStream`] pair), declared `extern "C"`
//!   against the C runtime std already
//!   links — no `libc` crate, no new dependency. A sleeping event
//!   thread costs nothing and wakes in microseconds when a peer
//!   sends, a response lands, or the server shuts down.
//! * **Portable fallback** (non-unix) — no fd polling exists in std,
//!   so [`Poller::wait`] parks on a condvar for up to the tick and
//!   reports *everything* as possibly-ready; the event loop then
//!   scans its nonblocking sockets, and `WouldBlock` answers are
//!   cheap no-ops. Correctness identical, latency bounded by the
//!   tick instead of the kernel's readiness queue.
//!
//! The API is deliberately tiny: an interest list in, a readiness
//! list out, plus [`Waker`] for cross-thread nudges. The event loop
//! (in [`crate::server`]) owns all connection state; the poller owns
//! nothing but fds.

/// What an interest subscribes to / a readiness event reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Poll for readability.
    pub read: bool,
    /// Poll for writability.
    pub write: bool,
}

/// One readiness report: the index into the interest list that
/// [`Poller::wait`] was given, plus what it is ready for. Errors and
/// hangups are reported as readability — the subsequent read observes
/// the EOF or error and the state machine classifies it.
#[derive(Clone, Copy, Debug)]
pub struct Ready {
    /// Index into the interest slice passed to `wait`.
    pub idx: usize,
    /// Ready to read (or in an error/hangup state).
    pub read: bool,
    /// Ready to write.
    pub write: bool,
}

#[cfg(unix)]
mod sys {
    use super::{Interest, Ready};
    use std::io::{self, Read, Write};
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;

    #[repr(C)]
    struct PollFd {
        fd: RawFd,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        // std links the C runtime on every unix target; declaring the
        // symbol keeps the crate free of the `libc` crate while still
        // using the kernel's readiness queue.
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll(2)`-backed readiness over raw fds plus a wake pipe.
    pub struct Poller {
        wake_rx: UnixStream,
        wake_tx: Arc<UnixStream>,
        fds: Vec<PollFd>,
    }

    /// The cross-thread wake handle: one byte down the pipe.
    #[derive(Clone)]
    pub struct Waker {
        tx: Arc<UnixStream>,
    }

    impl Waker {
        /// Wakes the owning poller out of `wait`. A full pipe means a
        /// wake is already pending, which is just as good.
        pub fn wake(&self) {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    impl Poller {
        /// Builds a poller and its wake handle.
        pub fn new() -> io::Result<(Poller, Waker)> {
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let wake_tx = Arc::new(wake_tx);
            let waker = Waker {
                tx: wake_tx.clone(),
            };
            Ok((
                Poller {
                    wake_rx,
                    wake_tx,
                    fds: Vec::new(),
                },
                Waker {
                    tx: waker.tx.clone(),
                },
            ))
        }

        /// Blocks until a subscribed fd is ready, the waker fires, or
        /// `timeout` passes. Readiness lands in `ready` as indices
        /// into `interests`; returns `true` if the waker fired.
        pub fn wait(
            &mut self,
            interests: &[(&dyn AsRawFd, Interest)],
            timeout: Duration,
            ready: &mut Vec<Ready>,
        ) -> bool {
            ready.clear();
            self.fds.clear();
            self.fds.push(PollFd {
                fd: self.wake_rx.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            for (fd, want) in interests {
                let mut events = 0;
                if want.read {
                    events |= POLLIN;
                }
                if want.write {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd: fd.as_raw_fd(),
                    events,
                    revents: 0,
                });
            }
            let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, ms.max(1)) };
            if rc <= 0 {
                // Timeout, or EINTR — either way the loop ticks.
                return false;
            }
            let mut woke = false;
            if self.fds[0].revents != 0 {
                woke = true;
                let mut sink = [0u8; 64];
                while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
            }
            for (i, pfd) in self.fds.iter().enumerate().skip(1) {
                if pfd.revents != 0 {
                    ready.push(Ready {
                        idx: i - 1,
                        // Hangups and errors count as readable: the
                        // read observes and classifies them.
                        read: pfd.revents & !POLLOUT != 0,
                        write: pfd.revents & POLLOUT != 0,
                    });
                }
            }
            woke
        }

        /// Keeps the write half alive for as long as the poller lives
        /// (the field is otherwise only reachable through wakers).
        pub fn waker(&self) -> Waker {
            Waker {
                tx: self.wake_tx.clone(),
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Interest, Ready};
    use std::io;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// Anything — the portable backend has no fds to name.
    pub trait AsRawFd {}
    impl<T> AsRawFd for T {}

    /// Condvar-backed fallback: `wait` parks for up to the tick and
    /// reports every subscribed interest as possibly-ready; the event
    /// loop's nonblocking reads and writes turn the overshoot into
    /// cheap `WouldBlock` no-ops.
    pub struct Poller {
        signal: Arc<(Mutex<bool>, Condvar)>,
    }

    /// The cross-thread wake handle.
    #[derive(Clone)]
    pub struct Waker {
        signal: Arc<(Mutex<bool>, Condvar)>,
    }

    impl Waker {
        /// Wakes the owning poller out of `wait`.
        pub fn wake(&self) {
            let (lock, cv) = &*self.signal;
            *lock.lock().expect("waker lock") = true;
            cv.notify_all();
        }
    }

    impl Poller {
        /// Builds a poller and its wake handle.
        pub fn new() -> io::Result<(Poller, Waker)> {
            let signal = Arc::new((Mutex::new(false), Condvar::new()));
            Ok((
                Poller {
                    signal: signal.clone(),
                },
                Waker { signal },
            ))
        }

        /// Parks for up to `timeout` (or until woken) and reports
        /// every interest as possibly-ready. Returns `true` when the
        /// waker fired.
        pub fn wait(
            &mut self,
            interests: &[(&dyn AsRawFd, Interest)],
            timeout: Duration,
            ready: &mut Vec<Ready>,
        ) -> bool {
            ready.clear();
            let (lock, cv) = &*self.signal;
            let mut woke = lock.lock().expect("poller lock");
            if !*woke {
                let (guard, _) = cv
                    .wait_timeout(woke, timeout)
                    .expect("poller wait poisoned");
                woke = guard;
            }
            let fired = *woke;
            *woke = false;
            drop(woke);
            for (i, (_, want)) in interests.iter().enumerate() {
                if want.read || want.write {
                    ready.push(Ready {
                        idx: i,
                        read: want.read,
                        write: want.write,
                    });
                }
            }
            fired
        }

        /// Another wake handle.
        pub fn waker(&self) -> Waker {
            Waker {
                signal: self.signal.clone(),
            }
        }
    }
}

pub use sys::{Poller, Waker};

/// The fd-naming bound the event loop registers interests against: on
/// unix the std trait (sockets implement it), elsewhere a blanket
/// stand-in the portable poller never inspects.
#[cfg(unix)]
pub use std::os::unix::io::AsRawFd;
#[cfg(not(unix))]
pub use sys::AsRawFd;

/// The fd bound the poller accepts per wait — far above anything the
/// admission gate admits, present so a runaway accept loop cannot
/// grow the pollfd array without bound.
pub const MAX_POLLED: usize = 16_384;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_sleeping_wait() {
        let (mut poller, waker) = Poller::new().expect("poller builds");
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            waker.wake();
        });
        let t0 = Instant::now();
        let mut ready = Vec::new();
        // Without the wake this would sleep the full two seconds.
        let mut woke = false;
        while t0.elapsed() < Duration::from_secs(2) {
            if poller.wait(&[], Duration::from_secs(2), &mut ready) {
                woke = true;
                break;
            }
        }
        assert!(woke, "wake must interrupt the wait");
        assert!(t0.elapsed() < Duration::from_secs(2));
        t.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn readiness_reports_a_readable_socket() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (sock, _) = listener.accept().unwrap();
        sock.set_nonblocking(true).unwrap();
        peer.write_all(b"hi").unwrap();
        let (mut poller, _waker) = Poller::new().unwrap();
        let mut ready = Vec::new();
        let t0 = Instant::now();
        let mut saw = false;
        while t0.elapsed() < Duration::from_secs(2) && !saw {
            poller.wait(
                &[(
                    &sock,
                    Interest {
                        read: true,
                        write: false,
                    },
                )],
                Duration::from_millis(100),
                &mut ready,
            );
            saw = ready.iter().any(|r| r.idx == 0 && r.read);
        }
        assert!(saw, "poll must report the readable socket");
    }
}
