//! The trace-query server: a nonblocking readiness reactor.
//!
//! Shape, in order of what a request meets:
//!
//! * **Event loops** — `event_threads` threads, each running a
//!   [`crate::reactor::Poller`] over its share of the nonblocking
//!   connections (thread 0 also polls the listener and deals new
//!   connections round-robin). A readiness event drives that
//!   connection's state machine ([`crate::conn::Conn`]): Reading a
//!   frame → Dispatching → Writing the response → back to Reading, or
//!   Draining on shutdown and wire errors. Partial reads and writes
//!   at arbitrary byte boundaries are the normal case, not an error;
//!   the `serve.reactor.*` counters record how often they happen.
//! * **Admission gate** — a max-inflight counter, checked on the
//!   event thread the moment a request frame completes. A request
//!   arriving while `max_inflight` requests are executing is answered
//!   `Busy` immediately instead of queueing unboundedly; the client
//!   retries. This bounds memory and keeps latency honest under
//!   overload (the `serve.inflight` high-water mark records the
//!   deepest it got).
//! * **Execution** — admitted requests hop to a small executor pool
//!   (`exec_workers` threads; `0` executes inline on the event
//!   thread), so a long query never wedges an event loop. Queries run
//!   on the store's parallel block farm ([`wrl_store::query_parallel`])
//!   when `query_workers > 1` and sequentially in-place otherwise;
//!   fetches ship raw compressed blocks for client-side verification;
//!   metrics snapshots reuse `wrl-obs-metrics/v1`. The finished
//!   response frame is handed back to the owning event thread through
//!   its completion inbox and a waker.
//! * **Stall budgets** — instead of per-socket kernel timeouts, the
//!   event loop ticks every `read_timeout` and charges a stall to any
//!   connection that is mid-frame without read progress, or has an
//!   undrained response without write progress. Over budget
//!   (`max_stalls` reads; `write_timeout / read_timeout` writes) the
//!   peer is severed — no peer pins reactor state forever. Idle
//!   connections *between* frames are never charged.
//! * **Live tail** — a [`LiveFeed`] is a named, in-progress trace a
//!   producer (the harness's `run_predicted_live`) appends to while
//!   clients `SUBSCRIBE` with an ASID+window predicate. Filtering
//!   happens server-side before fan-out: one pass over the newly
//!   published words feeds every subscriber's queue, each `EVENT`
//!   frame carrying the filtered-stream offset of its first word so
//!   the concatenation any subscriber receives is bit-identical to
//!   [`wrl_store::filter_stream`] over the same trace and predicate.
//!   Subscribe/unsubscribe are handled inline on the event thread
//!   (they bypass the admission gate — no store work to bound);
//!   pushes ride the ordinary `Writing` machinery via
//!   [`crate::conn::ConnState::Subscribed`]. A subscriber whose
//!   outgoing queue reaches `sub_queue` frames is *evicted*: a typed
//!   `SLOW_CONSUMER` error, a drain, and a `serve.sub.evicted` count
//!   — the same never-queue-unboundedly rule the admission gate
//!   enforces for requests.
//! * **Graceful shutdown** — [`Server::shutdown`] wakes every event
//!   loop; reading connections drain and close, dispatching ones get
//!   their response executed, enqueued and flushed, and the threads
//!   join once every connection is reaped. No admitted request is
//!   abandoned mid-execution.
//!
//! [`ServeHooks`] is the fault-injection seam (mirroring the store
//! farm's `FarmHooks`): the chaos campaign corrupts, truncates,
//! trickles or mid-frame-stalls encoded response frames right before
//! the socket write, and the client side must classify every
//! corrupting fault as a typed error — never a wrong answer, §4.3
//! carried over the wire — while the merely-slow shapes must still
//! deliver bit-identical answers.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wrl_store::{query_parallel, BlockCache, Predicate, TraceStore};
use wrl_trace::format::{classify, CtlOp, TraceWord};

use crate::conn::{Conn, ConnState, IoTally, ReadEvent, TickVerdict, WriteShape};
use crate::obs::ServeObs;
use crate::reactor::{AsRawFd, Interest, Poller, Ready, Waker, MAX_POLLED};
use crate::wire::{self, err, CatalogEntry, RawBlock, Request, Response, MAX_FRAME};

/// Server shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeCfg {
    /// Requests allowed to execute at once; the gate answers `Busy`
    /// past this.
    pub max_inflight: usize,
    /// Reactor tick period: the poll-wait bound, the stall-charging
    /// interval, and the shutdown-notice latency.
    pub read_timeout: Duration,
    /// Total time a peer may sit on an undrained response before
    /// being severed (charged in ticks of `read_timeout`).
    pub write_timeout: Duration,
    /// Mid-frame read-stall ticks tolerated before a peer is cut off
    /// (total stall bound ≈ `max_stalls × read_timeout`).
    pub max_stalls: u32,
    /// Worker threads for one query's parallel block decode; `1` runs
    /// the query sequentially in place, with no per-request spawns.
    pub query_workers: usize,
    /// Event-loop threads multiplexing the connections.
    pub event_threads: usize,
    /// Executor threads running admitted requests; `0` executes
    /// inline on the event thread that dispatched the request.
    pub exec_workers: usize,
    /// Decoded-word bytes cached per archive for windowed queries
    /// (the slot count follows each archive's block size, capped at
    /// its block count); `0` disables the cache and windowed queries
    /// decode like any other.
    pub query_cache_bytes: usize,
    /// Outgoing frames a live-tail subscriber may have queued before
    /// it is evicted as a slow consumer (floored to 1). The eviction
    /// fires the moment a push finds the queue already this deep.
    pub sub_queue: usize,
    /// Trace words a live feed retains for late joiners; `0` keeps
    /// everything (unbounded growth). Once a publish pushes the
    /// buffer past this bound the oldest overflow is evicted, counted
    /// in `serve.sub.retention_evicted`, and `from_start` subscribes
    /// answer a typed `RETENTION_EVICTED` error instead of a silently
    /// truncated replay.
    pub sub_retention: usize,
}

impl Default for ServeCfg {
    fn default() -> ServeCfg {
        // Topology follows the core count: on a one-core box extra
        // threads only add context switches to every request's
        // critical path, so everything runs inline on one event
        // loop; with real parallelism, two event loops share the
        // socket work and a small executor pool absorbs long
        // queries.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServeCfg {
            max_inflight: 16,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            max_stalls: 100,
            query_workers: cores.min(4),
            event_threads: cores.min(2),
            exec_workers: if cores <= 1 { 0 } else { cores.min(4) },
            query_cache_bytes: 32 << 20,
            sub_queue: 32,
            sub_retention: 1 << 22,
        }
    }
}

/// The archives a server offers, by name.
#[derive(Clone, Default)]
pub struct Catalog {
    entries: Vec<(String, Arc<TraceStore>)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds (or replaces) an archive under `name`, keeping the
    /// catalog sorted by name.
    pub fn add(&mut self, name: impl Into<String>, store: Arc<TraceStore>) {
        let name = name.into();
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.entries[i].1 = store,
            Err(i) => self.entries.insert(i, (name, store)),
        }
    }

    /// Looks an archive up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<TraceStore>> {
        self.get_indexed(name).map(|(_, s)| s)
    }

    /// Looks an archive up by name, also returning its catalog slot
    /// (the server's per-archive block-cache index).
    fn get_indexed(&self, name: &str) -> Option<(usize, &Arc<TraceStore>)> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| (i, &self.entries[i].1))
    }

    /// The catalog rows a catalog response ships.
    pub fn rows(&self) -> Vec<CatalogEntry> {
        self.entries
            .iter()
            .map(|(name, s)| CatalogEntry {
                name: name.clone(),
                n_words: s.n_words,
                n_blocks: s.n_blocks() as u32,
                block_words: s.block_words,
                compressed_bytes: s.compressed_bytes(),
            })
            .collect()
    }
}

/// What the fault seam does to one encoded response frame.
#[derive(Clone, Copy, Debug)]
pub enum WireFate {
    /// Write the frame as encoded.
    Deliver,
    /// Flip one bit (`at` is reduced modulo the frame length) before
    /// writing — at-rest frame corruption.
    FlipBit {
        /// Byte position selector.
        at: u64,
        /// Bit within the byte (reduced modulo 8).
        bit: u8,
    },
    /// Write only the first `at % len` bytes, then sever the
    /// connection — a mid-response drop.
    CutAfter {
        /// Cut position selector.
        at: u64,
    },
    /// Deliver the whole frame, but at most `chunk` bytes per
    /// writability event — a short-write storm (`wire.partial`). The
    /// client must still get a bit-identical answer.
    Trickle {
        /// Byte cap per writability event (floored to 1).
        chunk: usize,
    },
    /// Deliver the whole frame, but pause `ticks` reactor ticks after
    /// `at % len` bytes are out — a mid-frame stall (`wire.stall`).
    /// The client must still get a bit-identical answer.
    StallMid {
        /// Pause position selector (reduced modulo the frame length).
        at: u64,
        /// Reactor ticks to pause (one-shot).
        ticks: u32,
    },
}

/// Deterministic fault-injection hooks, consulted once per response
/// frame with a server-global response sequence number. Production
/// servers use the default (deliver everything); the `wrl-fault`
/// chaos campaign is the only other caller.
#[derive(Clone, Default)]
pub struct ServeHooks {
    response: Option<Arc<dyn Fn(u64) -> WireFate + Send + Sync>>,
}

impl ServeHooks {
    /// Hooks that consult `f` with the response sequence number for
    /// every response about to be written.
    pub fn on_response(f: impl Fn(u64) -> WireFate + Send + Sync + 'static) -> ServeHooks {
        ServeHooks {
            response: Some(Arc::new(f)),
        }
    }

    fn fate(&self, seq: u64) -> WireFate {
        match &self.response {
            None => WireFate::Deliver,
            Some(f) => f(seq),
        }
    }
}

struct Shared {
    catalog: Catalog,
    cfg: ServeCfg,
    obs: ServeObs,
    hooks: ServeHooks,
    /// One decoded-block cache per catalog entry (same order), sized
    /// by `cfg.query_cache_blocks`; empty when the cache is disabled.
    /// The lock serialises windowed queries per archive — cheap once
    /// warm, and full-scan queries keep the parallel farm instead.
    caches: Vec<Mutex<BlockCache>>,
    /// The admission gate proper — a plain atomic, not the obs gauge,
    /// so admission works identically in no-record builds.
    inflight: AtomicUsize,
    resp_seq: AtomicU64,
    shutdown: AtomicBool,
    /// Live feeds and their subscribers. Locked by publishers
    /// appending words and by event threads handling subscribe /
    /// unsubscribe / close — never while holding a completion inbox.
    subs: Mutex<SubState>,
}

/// Words per pushed `EVENT` frame at most — bounds one frame's size
/// (and the catch-up burst granularity) well under `MAX_FRAME`.
/// Pinned in docs/FORMATS.md as `wire.sub_chunk_words`.
pub const SUB_CHUNK: usize = 8192;

/// Every live feed and every subscription, under one lock.
#[derive(Default)]
struct SubState {
    feeds: Vec<Feed>,
    entries: Vec<SubEntry>,
}

/// One named in-progress trace: the words published so far, each
/// word's base ASID context (attributed exactly as
/// [`wrl_store::filter_stream`] does — a `CtxSwitch` word belongs to
/// the ASID it switches to), and whether the producer finished.
struct Feed {
    name: String,
    words: Vec<u32>,
    asids: Vec<u8>,
    /// Absolute stream position of `words[0]` — nonzero once the
    /// retention bound has evicted history. Predicate windows are
    /// judged against `base + index` so admission is stable across
    /// evictions.
    base: u64,
    /// Current ASID context (carried across `publish` calls).
    asid: u8,
    finished: bool,
}

/// One subscriber's cursor into a feed.
struct SubEntry {
    /// Event thread owning the connection.
    thread: usize,
    /// Slot + generation identifying the connection (generation
    /// guards against slot reuse, as for [`Completion`]s).
    slot: usize,
    gen: u64,
    /// Index into [`SubState::feeds`].
    feed: usize,
    pred: Predicate,
    /// Raw feed words consumed (filtered or not).
    pos: usize,
    /// Filtered-stream offset of the next admitted word — the `seq`
    /// the next `EVENT` frame carries.
    seq: u64,
    /// The subscribe request id every pushed frame echoes.
    req_id: u64,
    /// End-of-feed marker already delivered.
    ended: bool,
}

/// Admits feed words `e.pos..` under the entry's predicate, advancing
/// the cursor and yielding chunked `EVENT` responses — plus the
/// zero-word end-of-feed marker once the feed is finished. Shared by
/// the subscribe-time catch-up and the publish-time pump, so both
/// paths produce the same filtered stream.
fn pump_entry(feed: &Feed, e: &mut SubEntry) -> Vec<Response> {
    let mut out = Vec::new();
    while e.pos < feed.words.len() {
        let seq = e.seq;
        let mut words = Vec::new();
        while e.pos < feed.words.len() && words.len() < SUB_CHUNK {
            let p = e.pos;
            if e.pred.admits(feed.base + p as u64, feed.asids[p]) {
                words.push(feed.words[p]);
            }
            e.pos += 1;
        }
        if !words.is_empty() {
            e.seq += words.len() as u64;
            out.push(Response::Event { seq, words });
        }
    }
    if feed.finished && !e.ended {
        e.ended = true;
        out.push(Response::Event {
            seq: e.seq,
            words: Vec::new(),
        });
    }
    out
}

/// Unregisters the subscription for `(thread, slot, gen)`, if any,
/// maintaining the `serve.sub.active` gauge. Callers: unsubscribe,
/// eviction, and the reap loop (a subscriber that vanished without
/// unsubscribing).
fn remove_entry(shared: &Shared, thread: usize, slot: usize, gen: u64) -> Option<SubEntry> {
    let mut subs = shared.subs.lock().expect("subs lock");
    let i = subs
        .entries
        .iter()
        .position(|e| e.thread == thread && e.slot == slot && e.gen == gen)?;
    shared.obs.sub_active.add(-1);
    Some(subs.entries.remove(i))
}

/// One finished request — or one live-feed push — on its way back to
/// the owning event thread.
struct Completion {
    slot: usize,
    gen: u64,
    frame: Vec<u8>,
    shape: WriteShape,
    sever_after: bool,
    /// A live-feed `EVENT` push rather than a request's response:
    /// delivered through [`Conn::try_push`] against the `sub_queue`
    /// bound (eviction on overflow), and dropped silently if the
    /// connection left `Subscribed` since the publish.
    push: bool,
}

/// An admitted request on its way to the executor pool.
struct Job {
    thread: usize,
    slot: usize,
    gen: u64,
    req_id: u64,
    req: Request,
}

/// Per-event-thread mailbox: connections dealt by the acceptor and
/// completions returned by the executors.
#[derive(Default)]
struct Inbox {
    conns: Mutex<Vec<TcpStream>>,
    done: Mutex<Vec<Completion>>,
}

/// Cross-thread reactor state: one inbox + waker per event thread.
struct Reactor {
    inboxes: Vec<Inbox>,
    wakers: Vec<Waker>,
    next: AtomicUsize,
}

/// A running trace-query server. Dropping it (or calling
/// [`Server::shutdown`]) drains in-flight requests and joins every
/// thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    rt: Arc<Reactor>,
    events: Vec<JoinHandle<()>>,
    execs: Vec<JoinHandle<()>>,
    exec_tx: Option<mpsc::Sender<Job>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `catalog`.
    pub fn start(addr: &str, catalog: Catalog, cfg: ServeCfg) -> io::Result<Server> {
        Server::start_with_hooks(addr, catalog, cfg, ServeHooks::default())
    }

    /// Like [`Server::start`], with fault-injection hooks. Used by the
    /// chaos campaign; production callers use `start` (equivalent to
    /// default hooks).
    pub fn start_with_hooks(
        addr: &str,
        catalog: Catalog,
        cfg: ServeCfg,
        hooks: ServeHooks,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let caches = if cfg.query_cache_bytes > 0 {
            catalog
                .entries
                .iter()
                .map(|(_, s)| {
                    let block_bytes = (s.block_words as usize).max(1) * 4;
                    let slots = (cfg.query_cache_bytes / block_bytes).clamp(1, s.n_blocks().max(1));
                    Mutex::new(BlockCache::new(slots))
                })
                .collect()
        } else {
            Vec::new()
        };
        let shared = Arc::new(Shared {
            catalog,
            cfg,
            obs: ServeObs::register(),
            hooks,
            caches,
            inflight: AtomicUsize::new(0),
            resp_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            subs: Mutex::new(SubState::default()),
        });
        let n_ev = cfg.event_threads.max(1);
        let mut pollers = Vec::with_capacity(n_ev);
        let mut wakers = Vec::with_capacity(n_ev);
        let mut inboxes = Vec::with_capacity(n_ev);
        for _ in 0..n_ev {
            let (p, w) = Poller::new()?;
            pollers.push(p);
            wakers.push(w);
            inboxes.push(Inbox::default());
        }
        let rt = Arc::new(Reactor {
            inboxes,
            wakers,
            next: AtomicUsize::new(0),
        });
        let (exec_tx, exec_rx) = mpsc::channel::<Job>();
        let exec_rx = Arc::new(Mutex::new(exec_rx));
        let execs = (0..cfg.exec_workers)
            .map(|_| {
                let (shared, rt, rx) = (shared.clone(), rt.clone(), exec_rx.clone());
                std::thread::spawn(move || exec_loop(&shared, &rt, &rx))
            })
            .collect();
        let mut listener = Some(listener);
        let events = pollers
            .into_iter()
            .enumerate()
            .map(|(i, poller)| {
                let l = if i == 0 { listener.take() } else { None };
                let (shared, rt, tx) = (shared.clone(), rt.clone(), exec_tx.clone());
                std::thread::spawn(move || event_loop(&shared, &rt, poller, i, l, &tx))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            rt,
            events,
            execs,
            exec_tx: Some(exec_tx),
        })
    }

    /// The bound address (with the actual port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric handles (tests assert on these).
    pub fn obs(&self) -> &ServeObs {
        &self.shared.obs
    }

    /// Registers (or reopens the handle to) the live feed named
    /// `name` and returns its publisher handle. Clients reach the
    /// feed with `SUBSCRIBE name`; a name colliding with a catalog
    /// archive is legal (the namespaces are separate — queries hit
    /// the catalog, subscriptions hit the feeds).
    pub fn live_feed(&self, name: &str) -> LiveFeed {
        let mut subs = self.shared.subs.lock().expect("subs lock");
        let feed = match subs.feeds.iter().position(|f| f.name == name) {
            Some(i) => i,
            None => {
                subs.feeds.push(Feed {
                    name: name.to_string(),
                    words: Vec::new(),
                    asids: Vec::new(),
                    base: 0,
                    asid: 0,
                    finished: false,
                });
                subs.feeds.len() - 1
            }
        };
        LiveFeed {
            shared: self.shared.clone(),
            rt: self.rt.clone(),
            feed,
        }
    }

    /// Stops accepting, drains every in-flight request, joins all
    /// threads. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.events.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in &self.rt.wakers {
            w.wake();
        }
        for h in self.events.drain(..) {
            h.join().expect("serve event thread panicked");
        }
        // Event threads exit only with every connection reaped, so no
        // job is still owed a completion; closing the channel lets
        // the executors drain out.
        drop(self.exec_tx.take());
        for h in self.execs.drain(..) {
            h.join().expect("serve exec thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The producing end of a live tail: a handle onto one named feed of
/// a running [`Server`]. The producer appends words with
/// [`LiveFeed::publish`] as the simulated machine drains them and
/// calls [`LiveFeed::finish`] once — subscribers then receive a
/// zero-word end-of-feed `EVENT` and `tracedump tail` exits.
///
/// Each publish filters the new words once per subscriber under that
/// subscriber's predicate and hands the resulting `EVENT` frames to
/// the owning event threads as push completions; the publisher never
/// touches a socket. Publishing after `finish` is ignored.
pub struct LiveFeed {
    shared: Arc<Shared>,
    rt: Arc<Reactor>,
    feed: usize,
}

impl LiveFeed {
    /// Appends `words` to the feed and pumps every subscriber.
    pub fn publish(&self, words: &[u32]) {
        let mut subs = self.shared.subs.lock().expect("subs lock");
        let state = &mut *subs;
        let f = &mut state.feeds[self.feed];
        if f.finished {
            return;
        }
        f.words.reserve(words.len());
        f.asids.reserve(words.len());
        for &w in words {
            if let TraceWord::Ctl(c) = classify(w) {
                if c.op == CtlOp::CtxSwitch {
                    f.asid = c.payload;
                }
            }
            f.words.push(w);
            f.asids.push(f.asid);
        }
        self.pump(state);
        self.evict(state);
    }

    /// Applies the retention bound after a pump: every attached
    /// cursor sits at the feed head, so dropping the overflow from
    /// the front loses nothing a subscriber still needs — only
    /// history a *future* `from_start` subscriber would have
    /// replayed, which is why such subscribes answer
    /// `RETENTION_EVICTED` once `base` moves.
    fn evict(&self, state: &mut SubState) {
        let retention = self.shared.cfg.sub_retention;
        let f = &mut state.feeds[self.feed];
        if retention == 0 || f.words.len() <= retention {
            return;
        }
        let overflow = f.words.len() - retention;
        f.words.drain(..overflow);
        f.asids.drain(..overflow);
        f.base += overflow as u64;
        for e in state.entries.iter_mut().filter(|e| e.feed == self.feed) {
            // pump() just ran under this same lock, so pos == old len
            // >= overflow; keep the cursor on the same absolute word.
            e.pos -= overflow;
        }
        self.shared.obs.sub_retention_evicted.add(overflow as u64);
    }

    /// Marks the feed complete and delivers each subscriber its
    /// remaining words plus the zero-word end-of-feed marker.
    /// Idempotent.
    pub fn finish(&self) {
        let mut subs = self.shared.subs.lock().expect("subs lock");
        let state = &mut *subs;
        state.feeds[self.feed].finished = true;
        self.pump(state);
    }

    /// Drains every subscriber's cursor up to the feed head, shipping
    /// the filtered words as push completions to the event threads.
    fn pump(&self, state: &mut SubState) {
        let SubState { feeds, entries } = state;
        let feed = &feeds[self.feed];
        let mut woken = vec![false; self.rt.inboxes.len()];
        for e in entries.iter_mut().filter(|e| e.feed == self.feed) {
            for ev in pump_entry(feed, e) {
                if let Response::Event { ref words, .. } = ev {
                    self.shared.obs.sub_events.inc();
                    self.shared.obs.sub_words.add(words.len() as u64);
                }
                let (frame, shape, sever_after) = fated(&self.shared, e.req_id, &ev);
                self.rt.inboxes[e.thread]
                    .done
                    .lock()
                    .expect("done lock")
                    .push(Completion {
                        slot: e.slot,
                        gen: e.gen,
                        frame,
                        shape,
                        sever_after,
                        push: true,
                    });
                woken[e.thread] = true;
            }
        }
        for (t, w) in woken.into_iter().enumerate() {
            if w {
                self.rt.wakers[t].wake();
            }
        }
    }
}

/// One registered connection on an event thread. The generation
/// guards completions against slot reuse: a job finishing after its
/// connection died (and the slot was re-issued) is dropped.
struct SlotEntry {
    conn: Conn<TcpStream>,
    gen: u64,
}

/// Everything `dispatch`/`advance` need besides the connection.
struct Ctx<'a> {
    shared: &'a Shared,
    exec_tx: &'a mpsc::Sender<Job>,
    thread: usize,
    /// `exec_workers == 0`: run admitted requests on this thread.
    inline: bool,
}

fn exec_loop(shared: &Shared, rt: &Reactor, rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        // Holding the lock across `recv` parks the other workers on
        // the mutex instead of the channel — same wakeup order, no
        // lost jobs, and the channel closing still drains us out.
        let job = {
            let rx = rx.lock().expect("serve exec rx lock");
            rx.recv()
        };
        let Ok(job) = job else { break };
        let thread = job.thread;
        let done = run_job(shared, job);
        rt.inboxes[thread]
            .done
            .lock()
            .expect("serve done lock")
            .push(done);
        rt.wakers[thread].wake();
    }
}

/// Executes one admitted request and shapes its response frame.
fn run_job(shared: &Shared, job: Job) -> Completion {
    let t0 = Instant::now();
    let resp = handle(shared, &job.req);
    let opcode = job.req.opcode();
    shared
        .obs
        .record_latency(opcode, t0.elapsed().as_nanos() as u64);
    shared.obs.count_request(opcode);
    shared.obs.inflight.add(-1);
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    let (frame, shape, sever_after) = fated(shared, job.req_id, &resp);
    Completion {
        slot: job.slot,
        gen: job.gen,
        frame,
        shape,
        sever_after,
        push: false,
    }
}

/// Encodes one response and applies the fault seam, yielding the
/// bytes, the write shape and whether to sever after flushing.
fn fated(shared: &Shared, req_id: u64, resp: &Response) -> (Vec<u8>, WriteShape, bool) {
    let mut frame = wire::encode_response(req_id, resp);
    let seq = shared.resp_seq.fetch_add(1, Ordering::SeqCst);
    match shared.hooks.fate(seq) {
        WireFate::Deliver => (frame, WriteShape::default(), false),
        WireFate::FlipBit { at, bit } => {
            let i = (at % frame.len() as u64) as usize;
            frame[i] ^= 1 << (bit % 8);
            (frame, WriteShape::default(), false)
        }
        WireFate::CutAfter { at } => {
            let keep = (at % frame.len() as u64) as usize;
            frame.truncate(keep);
            (frame, WriteShape::default(), true)
        }
        WireFate::Trickle { chunk } => {
            let shape = WriteShape {
                max_chunk: Some(chunk.max(1)),
                stall: None,
            };
            (frame, shape, false)
        }
        WireFate::StallMid { at, ticks } => {
            let at = (at % frame.len().max(1) as u64) as usize;
            let shape = WriteShape {
                max_chunk: None,
                stall: Some((at, ticks)),
            };
            (frame, shape, false)
        }
    }
}

/// Drives one connection as far as it can go right now: flush
/// whatever is writable, dispatch any completed request frame, and
/// repeat until it blocks or goes quiescent.
fn advance(s: &mut SlotEntry, slot: usize, cx: &Ctx<'_>, tally: &mut IoTally) {
    loop {
        if s.conn.wants_write() {
            let n = s.conn.on_writable(tally);
            if n > 0 {
                cx.shared.obs.bytes_out.add(n);
            }
        }
        if s.conn.has_frame() {
            dispatch(s, slot, cx);
            continue;
        }
        break;
    }
}

/// Takes one completed request frame off the connection, runs it
/// through decode + admission, and either hands it to the executors
/// or enqueues the immediate (Busy / wire-error) answer.
fn dispatch(s: &mut SlotEntry, slot: usize, cx: &Ctx<'_>) {
    let Some(body) = s.conn.take_frame() else {
        return;
    };
    let shared = cx.shared;
    shared.obs.bytes_in.add(4 + body.len() as u64);
    let (req_id, req) = match wire::decode_request(&body) {
        Ok(x) => x,
        Err(e) => {
            shared.obs.wire_errors.inc();
            // The id bytes may themselves be damaged; echo them
            // anyway so the client can correlate, then drain and
            // close — framing can no longer be trusted.
            let rid = u64::from_le_bytes(body[..8].try_into().unwrap());
            let (frame, shape, sever) = fated(
                shared,
                rid,
                &Response::Error {
                    code: err::WIRE,
                    msg: e.to_string(),
                },
            );
            s.conn.enqueue(frame, shape, sever);
            s.conn.begin_drain();
            return;
        }
    };
    // Live-tail control frames are handled inline on the event
    // thread — no store work to bound, so they bypass the admission
    // gate — and a subscribed connection accepts nothing else (its
    // response stream is the push feed).
    if s.conn.state() == ConnState::Subscribed && !matches!(req, Request::Unsubscribe) {
        let (frame, shape, sever) = fated(
            shared,
            req_id,
            &bad_request("subscribed: only unsubscribe is accepted here"),
        );
        s.conn.enqueue(frame, shape, sever);
        return;
    }
    match req {
        Request::Subscribe {
            ref archive,
            pred,
            from_start,
        } => {
            subscribe_inline(s, slot, cx, req_id, archive, pred, from_start);
            return;
        }
        Request::Unsubscribe => {
            unsubscribe_inline(s, slot, cx, req_id);
            return;
        }
        _ => {}
    }
    // The admission gate: reserve a slot or answer Busy now — never
    // queue unboundedly.
    let admitted = shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.cfg.max_inflight).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        shared.obs.reject_busy.inc();
        let (frame, shape, sever) = fated(shared, req_id, &Response::Busy);
        s.conn.enqueue(frame, shape, sever);
        return;
    }
    shared.obs.inflight.add(1);
    let job = Job {
        thread: cx.thread,
        slot,
        gen: s.gen,
        req_id,
        req,
    };
    if cx.inline {
        let done = run_job(shared, job);
        s.conn.enqueue(done.frame, done.shape, done.sever_after);
    } else {
        // Send can only fail after shutdown closed the channel, and
        // shutdown waits for this thread — unreachable in practice.
        let _ = cx.exec_tx.send(job);
    }
}

/// Attaches this connection to a live feed: ack first, then the
/// catch-up burst (`from_start`) or a cursor at the feed head
/// (from-now, with `seq` pre-advanced past the filtered history so
/// late joiners still emit suffix-exact offsets). Runs inline on the
/// event thread. The catch-up burst is exempt from the `sub_queue`
/// bound — it is one bounded replay of history, not an unread
/// backlog; the bound governs the publish path.
fn subscribe_inline(
    s: &mut SlotEntry,
    slot: usize,
    cx: &Ctx<'_>,
    req_id: u64,
    name: &str,
    pred: Predicate,
    from_start: bool,
) {
    let shared = cx.shared;
    let mut subs = shared.subs.lock().expect("subs lock");
    let Some(feed_idx) = subs.feeds.iter().position(|f| f.name == name) else {
        drop(subs);
        let (frame, shape, sever) = fated(
            shared,
            req_id,
            &Response::Error {
                code: err::NO_SUCH_ARCHIVE,
                msg: format!("no live feed named {name:?}"),
            },
        );
        s.conn.enqueue(frame, shape, sever);
        return;
    };
    if from_start && subs.feeds[feed_idx].base > 0 {
        // The retention bound already evicted history this replay
        // would need; a truncated stream pretending to be complete is
        // worse than a typed refusal.
        let base = subs.feeds[feed_idx].base;
        drop(subs);
        let (frame, shape, sever) = fated(
            shared,
            req_id,
            &Response::Error {
                code: err::RETENTION_EVICTED,
                msg: format!(
                    "feed {name:?} evicted its first {base} words under the \
                     retention bound; subscribe from-now instead"
                ),
            },
        );
        s.conn.enqueue(frame, shape, sever);
        return;
    }
    shared.obs.sub_subscribes.inc();
    shared.obs.sub_active.add(1);
    s.conn.mark_subscribed();
    let (frame, shape, sever) = fated(shared, req_id, &Response::Subscribed);
    s.conn.enqueue(frame, shape, sever);
    let feed = &subs.feeds[feed_idx];
    let (pos, seq) = if from_start {
        (0, 0)
    } else {
        // From-now: skip the history but keep the filtered-stream
        // offset honest — count what the predicate would have
        // admitted so far (positions judged absolutely, so a feed
        // whose front was evicted still reports suffix-exact seqs
        // for the retained words).
        let admitted = (0..feed.words.len())
            .filter(|&p| pred.admits(feed.base + p as u64, feed.asids[p]))
            .count() as u64;
        (feed.words.len(), admitted)
    };
    let mut entry = SubEntry {
        thread: cx.thread,
        slot,
        gen: s.gen,
        feed: feed_idx,
        pred,
        pos,
        seq,
        req_id,
        ended: false,
    };
    let events = pump_entry(feed, &mut entry);
    subs.entries.push(entry);
    drop(subs);
    for ev in events {
        if let Response::Event { ref words, .. } = ev {
            shared.obs.sub_events.inc();
            shared.obs.sub_words.add(words.len() as u64);
        }
        let (frame, shape, sever) = fated(shared, req_id, &ev);
        s.conn.enqueue(frame, shape, sever);
    }
}

/// Detaches a subscribed connection and returns it to ordinary
/// request/response service. Pushes already queued still flush ahead
/// of the ack; the client discards `EVENT` frames until it sees the
/// `Unsubscribed` ack.
fn unsubscribe_inline(s: &mut SlotEntry, slot: usize, cx: &Ctx<'_>, req_id: u64) {
    let shared = cx.shared;
    if s.conn.state() != ConnState::Subscribed {
        let (frame, shape, sever) = fated(shared, req_id, &bad_request("not subscribed"));
        s.conn.enqueue(frame, shape, sever);
        return;
    }
    remove_entry(shared, cx.thread, slot, s.gen);
    shared.obs.sub_unsubscribes.inc();
    let (frame, shape, sever) = fated(shared, req_id, &Response::Unsubscribed);
    s.conn.enqueue(frame, shape, sever);
    s.conn.mark_unsubscribed();
}

fn event_loop(
    shared: &Shared,
    rt: &Reactor,
    mut poller: Poller,
    thread: usize,
    listener: Option<TcpListener>,
    exec_tx: &mpsc::Sender<Job>,
) {
    let obs = &shared.obs;
    let tick = shared.cfg.read_timeout.max(Duration::from_millis(1));
    let write_budget = (shared.cfg.write_timeout.as_millis() / tick.as_millis()).max(1) as u32;
    let cx = Ctx {
        shared,
        exec_tx,
        thread,
        inline: shared.cfg.exec_workers == 0,
    };
    let mut slots: Vec<Option<SlotEntry>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut gen = 0u64;
    let mut ready: Vec<Ready> = Vec::new();
    let mut tally = IoTally::default();
    let mut last_tick = Instant::now();
    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);

        // Poll everything that wants attention (plus the listener on
        // thread 0 while accepting).
        let mut map: Vec<usize> = Vec::new();
        let woke = {
            let mut interests: Vec<(&dyn AsRawFd, Interest)> = Vec::new();
            if let Some(l) = &listener {
                if !shutting {
                    interests.push((
                        l,
                        Interest {
                            read: true,
                            write: false,
                        },
                    ));
                    map.push(usize::MAX);
                }
            }
            for (i, s) in slots.iter().enumerate() {
                let Some(s) = s else { continue };
                let want = Interest {
                    read: s.conn.wants_read(),
                    write: s.conn.wants_write(),
                };
                if want.read || want.write {
                    interests.push((s.conn.transport(), want));
                    map.push(i);
                }
            }
            let budget = tick
                .saturating_sub(last_tick.elapsed())
                .max(Duration::from_millis(1));
            poller.wait(&interests, budget, &mut ready)
        };
        if woke {
            obs.reactor_wakeups.inc();
        }

        // Connections the acceptor dealt us.
        let newcomers = std::mem::take(&mut *rt.inboxes[thread].conns.lock().expect("conns lock"));
        for stream in newcomers {
            if shutting {
                continue; // dropped: too late to serve
            }
            register(
                &mut slots,
                &mut free,
                &mut gen,
                stream,
                shared,
                write_budget,
            );
        }

        // Responses the executors finished, and live-feed pushes the
        // publishers handed over.
        let done = std::mem::take(&mut *rt.inboxes[thread].done.lock().expect("done lock"));
        for c in done {
            let Some(s) = slots.get_mut(c.slot).and_then(|o| o.as_mut()) else {
                continue;
            };
            if s.gen != c.gen {
                continue;
            }
            if c.push {
                if s.conn.state() != ConnState::Subscribed {
                    // Unsubscribed or draining since the publish —
                    // the push is stale, drop it.
                    continue;
                }
                if c.sever_after {
                    // The fault seam cut this push mid-frame: deliver
                    // the truncated buffer and sever, bound or not.
                    s.conn.enqueue(c.frame, c.shape, true);
                } else if !s.conn.try_push(c.frame, c.shape, shared.cfg.sub_queue) {
                    // Slow consumer: the queue is at its documented
                    // bound. Typed disconnect, never unbounded memory.
                    obs.sub_evicted.inc();
                    let rid = remove_entry(shared, thread, c.slot, s.gen).map_or(0, |e| e.req_id);
                    let frame = wire::encode_response(
                        rid,
                        &Response::Error {
                            code: err::SLOW_CONSUMER,
                            msg: format!(
                                "evicted: {} frames queued at bound {}",
                                s.conn.out_depth(),
                                shared.cfg.sub_queue
                            ),
                        },
                    );
                    s.conn.enqueue(frame, WriteShape::default(), false);
                    s.conn.begin_drain();
                }
                advance(s, c.slot, &cx, &mut tally);
                continue;
            }
            s.conn.enqueue(c.frame, c.shape, c.sever_after);
            advance(s, c.slot, &cx, &mut tally);
        }

        // Readiness events.
        for r in &ready {
            obs.reactor_readiness.inc();
            let target = map[r.idx];
            if target == usize::MAX {
                accept_ready(
                    listener.as_ref(),
                    rt,
                    thread,
                    &mut slots,
                    &mut free,
                    &mut gen,
                    shared,
                    write_budget,
                );
                continue;
            }
            let Some(s) = slots.get_mut(target).and_then(|o| o.as_mut()) else {
                continue;
            };
            if r.read {
                match s.conn.on_readable(&mut tally) {
                    ReadEvent::Open | ReadEvent::Eof | ReadEvent::MidFrameEof => {}
                    ReadEvent::BadFrame(e) => {
                        obs.wire_errors.inc();
                        let (frame, shape, sever) = fated(
                            shared,
                            0,
                            &Response::Error {
                                code: err::WIRE,
                                msg: e.to_string(),
                            },
                        );
                        s.conn.enqueue(frame, shape, sever);
                    }
                }
            }
            advance(s, target, &cx, &mut tally);
        }

        // The tick: charge stall budgets at most once per period.
        if last_tick.elapsed() >= tick {
            last_tick = Instant::now();
            for s in slots.iter_mut().flatten() {
                if s.conn.on_tick() == TickVerdict::CutOff {
                    obs.reactor_stalls_cut.inc();
                }
            }
        }

        // Shutdown: no new reads; everything reading (or parked on a
        // subscription) drains away, everything dispatching finishes
        // through the normal path.
        if shutting {
            for s in slots.iter_mut().flatten() {
                if matches!(s.conn.state(), ConnState::Reading | ConnState::Subscribed) {
                    s.conn.begin_drain();
                }
            }
        }

        // Reap and account. A reaped subscriber (evicted, severed, or
        // gone without unsubscribing) also leaves the registry here.
        for (i, slot) in slots.iter_mut().enumerate() {
            let closed_gen = slot
                .as_ref()
                .and_then(|s| (s.conn.state() == ConnState::Closed).then_some(s.gen));
            if let Some(g) = closed_gen {
                remove_entry(shared, thread, i, g);
                *slot = None;
                free.push(i);
            }
        }
        if tally.partial_reads > 0 {
            obs.reactor_partial_read.add(tally.partial_reads);
        }
        if tally.partial_writes > 0 {
            obs.reactor_partial_write.add(tally.partial_writes);
        }
        tally = IoTally::default();

        if shutting && slots.iter().all(Option::is_none) {
            break;
        }
    }
}

/// Accepts until the listener would block, dealing connections
/// round-robin across the event threads.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: Option<&TcpListener>,
    rt: &Reactor,
    thread: usize,
    slots: &mut Vec<Option<SlotEntry>>,
    free: &mut Vec<usize>,
    gen: &mut u64,
    shared: &Shared,
    write_budget: u32,
) {
    let Some(l) = listener else { return };
    loop {
        match l.accept() {
            Ok((stream, _)) => {
                let t = rt.next.fetch_add(1, Ordering::Relaxed) % rt.inboxes.len();
                if t == thread {
                    register(slots, free, gen, stream, shared, write_budget);
                } else {
                    rt.inboxes[t].conns.lock().expect("conns lock").push(stream);
                    rt.wakers[t].wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Registers one accepted connection on this event thread.
fn register(
    slots: &mut Vec<Option<SlotEntry>>,
    free: &mut Vec<usize>,
    gen: &mut u64,
    stream: TcpStream,
    shared: &Shared,
    write_budget: u32,
) {
    if slots.len() - free.len() >= MAX_POLLED {
        return; // dropped: the pollfd array stays bounded
    }
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    shared.obs.connections.inc();
    *gen += 1;
    let entry = SlotEntry {
        conn: Conn::new(stream, shared.cfg.max_stalls, write_budget),
        gen: *gen,
    };
    match free.pop() {
        Some(i) => slots[i] = Some(entry),
        None => slots.push(Some(entry)),
    }
}

fn handle(shared: &Shared, req: &Request) -> Response {
    let store_of = |name: &str| {
        shared.catalog.get(name).ok_or_else(|| Response::Error {
            code: err::NO_SUCH_ARCHIVE,
            msg: format!("no archive named {name:?} in the catalog"),
        })
    };
    match req {
        Request::Catalog => Response::Catalog(shared.catalog.rows()),
        Request::Metrics => Response::Metrics(
            wrl_obs::global()
                .snapshot()
                .to_json(&[("service", "wrl-serve"), ("schema_wire", wire::WIRE_SCHEMA)]),
        ),
        // A single-node server fronts no shards; the typed refusal
        // keeps the opcode unambiguous (a fabric coordinator answers
        // it with its shard table).
        Request::Shards => bad_request("not a fabric coordinator"),
        // Subscriptions never reach the executor: dispatch handles
        // them inline on the event thread. The arm exists for any
        // other embedder of `handle`.
        Request::Subscribe { .. } | Request::Unsubscribe => {
            bad_request("subscriptions are handled on the event loop")
        }
        Request::Fetch {
            archive,
            first_block,
            n_blocks,
        } => {
            let store = match store_of(archive) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let first = *first_block as usize;
            let Some(end) = first.checked_add(*n_blocks as usize) else {
                return bad_request("block range overflows");
            };
            if end > store.n_blocks() {
                return bad_request("block range out of bounds");
            }
            let mut total = 0usize;
            let mut blocks = Vec::with_capacity(end - first);
            for i in first..end {
                let m = *store.block_meta(i);
                let comp = match store.block_bytes(i) {
                    Ok(b) => b,
                    Err(e) => {
                        return Response::Error {
                            code: err::STORE,
                            msg: e.to_string(),
                        }
                    }
                };
                total += 31 + comp.len();
                if total > MAX_FRAME - 64 {
                    return bad_request("block range exceeds the frame cap; fetch fewer blocks");
                }
                blocks.push(RawBlock {
                    words: m.words,
                    crc: m.crc,
                    first_asid: m.first_asid,
                    last_asid: m.last_asid,
                    flags: m.flags,
                    first_word: m.first_word,
                    min_daddr: m.min_daddr,
                    max_daddr: m.max_daddr,
                    comp: comp.to_vec(),
                });
            }
            Response::Fetch(blocks)
        }
        Request::Query { archive, pred } => {
            let (idx, store) = match shared.catalog.get_indexed(archive) {
                Some(pair) => pair,
                None => {
                    return Response::Error {
                        code: err::NO_SUCH_ARCHIVE,
                        msg: format!("no archive named {archive:?} in the catalog"),
                    }
                }
            };
            let workers = shared.cfg.query_workers;
            let result = if pred.window.is_some() && !shared.caches.is_empty() {
                // A windowed query touches a handful of blocks and
                // served archives see the same windows repeatedly:
                // answer from the per-archive decoded-block cache
                // instead of spinning the farm up.
                let mut cache = shared.caches[idx].lock().expect("cache lock poisoned");
                let (h, m) = (cache.hits(), cache.misses());
                let r = store.query_cached(pred, &mut cache);
                shared.obs.cache_hits.add(cache.hits() - h);
                shared.obs.cache_misses.add(cache.misses() - m);
                r
            } else if workers <= 1 {
                // Sequential in place: on small hosts the per-request
                // scoped-thread spawn dwarfs the query itself.
                store.query(pred)
            } else {
                query_parallel(store, pred, workers)
            };
            match result {
                Ok(q) => {
                    shared.obs.blocks_decoded.add(u64::from(q.blocks_decoded));
                    shared.obs.blocks_skipped.add(u64::from(q.blocks_skipped));
                    if q.words.len() * 4 + 64 > MAX_FRAME {
                        return bad_request(
                            "query result exceeds the frame cap; narrow the window",
                        );
                    }
                    Response::Query(q)
                }
                Err(e) => Response::Error {
                    code: err::STORE,
                    msg: e.to_string(),
                },
            }
        }
    }
}

fn bad_request(msg: &str) -> Response {
    Response::Error {
        code: err::BAD_REQUEST,
        msg: msg.to_string(),
    }
}
