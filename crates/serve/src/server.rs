//! The trace-query server: bounded concurrency over
//! thread-per-connection accept.
//!
//! Shape, in order of what a request meets:
//!
//! * **Accept loop** — one thread blocks in `accept`, spawning a
//!   thread per connection. Connection threads set per-socket read
//!   and write timeouts, so no peer can hold a thread hostage: an
//!   idle read tick doubles as the shutdown poll, and a peer that
//!   stalls mid-frame is cut off after a bounded number of ticks.
//! * **Admission gate** — a max-inflight counter. A request arriving
//!   while `max_inflight` requests are executing is answered `Busy`
//!   immediately instead of queueing unboundedly; the client retries.
//!   This bounds memory and keeps latency honest under overload (the
//!   `serve.inflight` high-water mark records the deepest it got).
//! * **Execution** — queries run on the store's parallel block farm
//!   ([`wrl_store::query_parallel`]), so one big query saturates the
//!   cores; fetches ship raw compressed blocks for client-side
//!   verification; metrics snapshots reuse `wrl-obs-metrics/v1`.
//! * **Graceful shutdown** — [`Server::shutdown`] stops the accept
//!   loop, lets every in-flight request finish and its response
//!   flush, then joins all threads. No request is abandoned
//!   mid-execution; connections drain at their next idle tick.
//!
//! [`ServeHooks`] is the fault-injection seam (mirroring the store
//! farm's `FarmHooks`): the chaos campaign corrupts or cuts encoded
//! response frames right before the socket write, and the client side
//! must classify every such fault as a typed error — never a wrong
//! answer, §4.3 carried over the wire.

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wrl_store::{query_parallel, TraceStore};

use crate::obs::ServeObs;
use crate::wire::{
    self, err, read_frame, CatalogEntry, FrameRead, RawBlock, Request, Response, MAX_FRAME,
};

/// Server shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServeCfg {
    /// Requests allowed to execute at once; the gate answers `Busy`
    /// past this.
    pub max_inflight: usize,
    /// Per-socket read-timeout tick (also the shutdown poll period).
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// Mid-frame read-timeout ticks tolerated before a peer is cut
    /// off (total stall bound ≈ `max_stalls × read_timeout`).
    pub max_stalls: u32,
    /// Worker threads for one query's parallel block decode.
    pub query_workers: usize,
}

impl Default for ServeCfg {
    fn default() -> ServeCfg {
        ServeCfg {
            max_inflight: 16,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            max_stalls: 100,
            query_workers: 4,
        }
    }
}

/// The archives a server offers, by name.
#[derive(Clone, Default)]
pub struct Catalog {
    entries: Vec<(String, Arc<TraceStore>)>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds (or replaces) an archive under `name`, keeping the
    /// catalog sorted by name.
    pub fn add(&mut self, name: impl Into<String>, store: Arc<TraceStore>) {
        let name = name.into();
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.entries[i].1 = store,
            Err(i) => self.entries.insert(i, (name, store)),
        }
    }

    /// Looks an archive up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<TraceStore>> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The catalog rows a catalog response ships.
    pub fn rows(&self) -> Vec<CatalogEntry> {
        self.entries
            .iter()
            .map(|(name, s)| CatalogEntry {
                name: name.clone(),
                n_words: s.n_words,
                n_blocks: s.n_blocks() as u32,
                block_words: s.block_words,
                compressed_bytes: s.compressed_bytes(),
            })
            .collect()
    }
}

/// What the fault seam does to one encoded response frame.
#[derive(Clone, Copy, Debug)]
pub enum WireFate {
    /// Write the frame as encoded.
    Deliver,
    /// Flip one bit (`at` is reduced modulo the frame length) before
    /// writing — at-rest frame corruption.
    FlipBit {
        /// Byte position selector.
        at: u64,
        /// Bit within the byte (reduced modulo 8).
        bit: u8,
    },
    /// Write only the first `at % len` bytes, then sever the
    /// connection — a mid-response drop.
    CutAfter {
        /// Cut position selector.
        at: u64,
    },
}

/// Deterministic fault-injection hooks, consulted once per response
/// frame with a server-global response sequence number. Production
/// servers use the default (deliver everything); the `wrl-fault`
/// chaos campaign is the only other caller.
#[derive(Clone, Default)]
pub struct ServeHooks {
    response: Option<Arc<dyn Fn(u64) -> WireFate + Send + Sync>>,
}

impl ServeHooks {
    /// Hooks that consult `f` with the response sequence number for
    /// every response about to be written.
    pub fn on_response(f: impl Fn(u64) -> WireFate + Send + Sync + 'static) -> ServeHooks {
        ServeHooks {
            response: Some(Arc::new(f)),
        }
    }

    fn fate(&self, seq: u64) -> WireFate {
        match &self.response {
            None => WireFate::Deliver,
            Some(f) => f(seq),
        }
    }
}

struct Shared {
    catalog: Catalog,
    cfg: ServeCfg,
    obs: ServeObs,
    hooks: ServeHooks,
    /// The admission gate proper — a plain atomic, not the obs gauge,
    /// so admission works identically in no-record builds.
    inflight: AtomicUsize,
    resp_seq: AtomicU64,
    shutdown: AtomicBool,
}

/// A running trace-query server. Dropping it (or calling
/// [`Server::shutdown`]) drains in-flight requests and joins every
/// thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `catalog`.
    pub fn start(addr: &str, catalog: Catalog, cfg: ServeCfg) -> io::Result<Server> {
        Server::start_with_hooks(addr, catalog, cfg, ServeHooks::default())
    }

    /// Like [`Server::start`], with fault-injection hooks. Used by the
    /// chaos campaign; production callers use `start` (equivalent to
    /// default hooks).
    pub fn start_with_hooks(
        addr: &str,
        catalog: Catalog,
        cfg: ServeCfg,
        hooks: ServeHooks,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            catalog,
            cfg,
            obs: ServeObs::register(),
            hooks,
            inflight: AtomicUsize::new(0),
            resp_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let (shared, conns) = (shared.clone(), conns.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = shared.clone();
                    let h = std::thread::spawn(move || connection(&shared, stream));
                    conns.lock().expect("serve conns lock").push(h);
                }
            })
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (with the actual port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric handles (tests assert on these).
    pub fn obs(&self) -> &ServeObs {
        &self.shared.obs
    }

    /// Stops accepting, drains every in-flight request, joins all
    /// threads. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; it
        // sees the flag before handling it.
        let _ = TcpStream::connect(self.addr);
        accept.join().expect("serve accept thread panicked");
        let conns = std::mem::take(&mut *self.conns.lock().expect("serve conns lock"));
        for h in conns {
            h.join().expect("serve connection thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn connection(shared: &Shared, mut stream: TcpStream) {
    let cfg = &shared.cfg;
    let obs = &shared.obs;
    obs.connections.inc();
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let body = match read_frame(&mut stream, cfg.max_stalls) {
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Frame(b)) => b,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Corrupt length prefix: report, then drop the
                // connection — framing can no longer be trusted.
                obs.wire_errors.inc();
                let _ = write_response(
                    &mut stream,
                    shared,
                    0,
                    &Response::Error {
                        code: err::WIRE,
                        msg: e.to_string(),
                    },
                );
                break;
            }
            Err(_) => break,
        };
        obs.bytes_in.add(4 + body.len() as u64);
        let (req_id, req) = match wire::decode_request(&body) {
            Ok(x) => x,
            Err(e) => {
                obs.wire_errors.inc();
                // The id bytes may themselves be damaged; echo them
                // anyway so the client can correlate, then drop the
                // connection.
                let rid = u64::from_le_bytes(body[..8].try_into().unwrap());
                let _ = write_response(
                    &mut stream,
                    shared,
                    rid,
                    &Response::Error {
                        code: err::WIRE,
                        msg: e.to_string(),
                    },
                );
                break;
            }
        };
        // The admission gate: reserve a slot or answer Busy now —
        // never queue.
        let admitted = shared
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cfg.max_inflight).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            obs.reject_busy.inc();
            if write_response(&mut stream, shared, req_id, &Response::Busy).is_err() {
                break;
            }
            continue;
        }
        obs.inflight.add(1);
        let t0 = Instant::now();
        let resp = handle(shared, &req);
        obs.record_latency(req.opcode(), t0.elapsed().as_nanos() as u64);
        obs.count_request(req.opcode());
        let wrote = write_response(&mut stream, shared, req_id, &resp);
        obs.inflight.add(-1);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        match wrote {
            Ok(true) => {}
            Ok(false) | Err(_) => break,
        }
    }
}

/// Encodes and writes one response, applying the fault seam. Returns
/// `Ok(false)` when the fate severed the connection.
fn write_response(
    stream: &mut TcpStream,
    shared: &Shared,
    req_id: u64,
    resp: &Response,
) -> io::Result<bool> {
    let mut frame = wire::encode_response(req_id, resp);
    let seq = shared.resp_seq.fetch_add(1, Ordering::SeqCst);
    let mut severed = false;
    match shared.hooks.fate(seq) {
        WireFate::Deliver => {}
        WireFate::FlipBit { at, bit } => {
            let i = (at % frame.len() as u64) as usize;
            frame[i] ^= 1 << (bit % 8);
        }
        WireFate::CutAfter { at } => {
            let keep = (at % frame.len() as u64) as usize;
            frame.truncate(keep);
            severed = true;
        }
    }
    stream.write_all(&frame)?;
    shared.obs.bytes_out.add(frame.len() as u64);
    if severed {
        let _ = stream.shutdown(Shutdown::Both);
        return Ok(false);
    }
    Ok(true)
}

fn handle(shared: &Shared, req: &Request) -> Response {
    let store_of = |name: &str| {
        shared.catalog.get(name).ok_or_else(|| Response::Error {
            code: err::NO_SUCH_ARCHIVE,
            msg: format!("no archive named {name:?} in the catalog"),
        })
    };
    match req {
        Request::Catalog => Response::Catalog(shared.catalog.rows()),
        Request::Metrics => Response::Metrics(
            wrl_obs::global()
                .snapshot()
                .to_json(&[("service", "wrl-serve"), ("schema_wire", wire::WIRE_SCHEMA)]),
        ),
        Request::Fetch {
            archive,
            first_block,
            n_blocks,
        } => {
            let store = match store_of(archive) {
                Ok(s) => s,
                Err(e) => return e,
            };
            let first = *first_block as usize;
            let Some(end) = first.checked_add(*n_blocks as usize) else {
                return bad_request("block range overflows");
            };
            if end > store.n_blocks() {
                return bad_request("block range out of bounds");
            }
            let mut total = 0usize;
            let mut blocks = Vec::with_capacity(end - first);
            for i in first..end {
                let m = *store.block_meta(i);
                let comp = match store.block_bytes(i) {
                    Ok(b) => b,
                    Err(e) => {
                        return Response::Error {
                            code: err::STORE,
                            msg: e.to_string(),
                        }
                    }
                };
                total += 31 + comp.len();
                if total > MAX_FRAME - 64 {
                    return bad_request("block range exceeds the frame cap; fetch fewer blocks");
                }
                blocks.push(RawBlock {
                    words: m.words,
                    crc: m.crc,
                    first_asid: m.first_asid,
                    last_asid: m.last_asid,
                    flags: m.flags,
                    first_word: m.first_word,
                    min_daddr: m.min_daddr,
                    max_daddr: m.max_daddr,
                    comp: comp.to_vec(),
                });
            }
            Response::Fetch(blocks)
        }
        Request::Query { archive, pred } => {
            let store = match store_of(archive) {
                Ok(s) => s,
                Err(e) => return e,
            };
            match query_parallel(store, pred, shared.cfg.query_workers) {
                Ok(q) => {
                    shared.obs.blocks_decoded.add(u64::from(q.blocks_decoded));
                    shared.obs.blocks_skipped.add(u64::from(q.blocks_skipped));
                    if q.words.len() * 4 + 64 > MAX_FRAME {
                        return bad_request(
                            "query result exceeds the frame cap; narrow the window",
                        );
                    }
                    Response::Query(q)
                }
                Err(e) => Response::Error {
                    code: err::STORE,
                    msg: e.to_string(),
                },
            }
        }
    }
}

fn bad_request(msg: &str) -> Response {
    Response::Error {
        code: err::BAD_REQUEST,
        msg: msg.to_string(),
    }
}
