//! The trace-service client: one connection, synchronous calls,
//! typed errors.
//!
//! Every failure mode a network hop adds — damaged frames, truncated
//! responses, severed connections, overload — maps to a typed
//! [`ServeError`], never a silently wrong result: response frames
//! carry the same CRC framing as requests, a fetched block is
//! decompressed and CRC-checked client-side against its index entry,
//! and a response's request id must echo the request's. `Busy` is its
//! own variant so callers can implement retry policy (the stress test
//! and `serve_bench` retry; `tracedump` reports it).
//!
//! A live-tail subscription ([`Client::subscribe`]) inverts the flow:
//! after the ack, the server pushes `EVENT` frames (echoing the
//! subscribe request id) that [`Client::next_event`] yields as
//! [`TailItem`]s until the zero-word end-of-feed marker — or a typed
//! eviction error if this client reads too slowly.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use wrl_store::{Predicate, QueryResult};

use crate::wire::{
    self, read_frame, CatalogEntry, FrameRead, RawBlock, Request, Response, WireError,
};

/// Client-side socket parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClientCfg {
    /// Read-timeout tick while waiting for a response.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Read-timeout ticks tolerated per call — both while waiting for
    /// the response to start and mid-frame — before the call fails
    /// with [`ServeError::TimedOut`] (total wait ≈ `max_stalls ×
    /// read_timeout`).
    pub max_stalls: u32,
}

impl Default for ClientCfg {
    fn default() -> ClientCfg {
        ClientCfg {
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            max_stalls: 200,
        }
    }
}

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (includes truncated responses, which
    /// surface as `UnexpectedEof`).
    Io(io::Error),
    /// The response frame was damaged (CRC, framing, opcode).
    Wire(WireError),
    /// The server's admission gate refused the request; retry later.
    Busy,
    /// The server answered with a typed error.
    Remote {
        /// One of the [`wire::err`] codes.
        code: u16,
        /// The server's diagnosis.
        msg: String,
    },
    /// The response decoded but does not answer the request (wrong
    /// id or wrong kind).
    BadReply(&'static str),
    /// No response within the configured stall budget.
    TimedOut,
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::TimedOut {
            ServeError::TimedOut
        } else {
            ServeError::Io(e)
        }
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Busy => write!(f, "server busy (admission gate full)"),
            ServeError::Remote { code, msg } => write!(f, "server error {code}: {msg}"),
            ServeError::BadReply(what) => write!(f, "bad reply: {what}"),
            ServeError::TimedOut => write!(f, "timed out waiting for response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One delivery from a live-tail subscription.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailItem {
    /// A batch of predicate-filtered trace words; `seq` is the
    /// filtered-stream offset of the first one, so concatenating
    /// batches in order reproduces `filter_stream` exactly.
    Event {
        /// Offset of `words[0]` in the filtered stream.
        seq: u64,
        /// The admitted words, in stream order (never empty).
        words: Vec<u32>,
    },
    /// The feed finished; no further events will arrive.
    End,
}

/// A connected trace-service client.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_stalls: u32,
    /// The in-force subscription's request id — pushed `EVENT`
    /// frames echo it.
    sub_id: Option<u64>,
}

impl Client {
    /// Connects with default socket parameters.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::connect_cfg(addr, ClientCfg::default())
    }

    /// Connects with explicit socket parameters.
    pub fn connect_cfg(addr: impl ToSocketAddrs, cfg: ClientCfg) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            next_id: 1,
            max_stalls: cfg.max_stalls,
            sub_id: None,
        })
    }

    /// Sends one request and reads its response. The exposed typed
    /// calls below are thin wrappers; this is also the raw entry the
    /// chaos campaign uses.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&wire::encode_request(id, req))?;
        let body = self.read_reply()?;
        let (rid, resp) = wire::decode_response(&body)?;
        if rid != id {
            return Err(ServeError::BadReply("response answers a different request"));
        }
        match resp {
            Response::Busy => Err(ServeError::Busy),
            Response::Error { code, msg } => Err(ServeError::Remote { code, msg }),
            other => Ok(other),
        }
    }

    /// Reads one response frame, honouring the stall budget.
    fn read_reply(&mut self) -> Result<Vec<u8>, ServeError> {
        let mut idles = 0u32;
        loop {
            match read_frame(&mut self.stream, self.max_stalls)? {
                FrameRead::Frame(b) => return Ok(b),
                FrameRead::Eof => return Err(ServeError::Io(io::ErrorKind::UnexpectedEof.into())),
                FrameRead::Idle => {
                    idles += 1;
                    if idles > self.max_stalls {
                        return Err(ServeError::TimedOut);
                    }
                }
            }
        }
    }

    /// Lists the server's archives.
    pub fn catalog(&mut self) -> Result<Vec<CatalogEntry>, ServeError> {
        match self.call(&Request::Catalog)? {
            Response::Catalog(rows) => Ok(rows),
            _ => Err(ServeError::BadReply("catalog answered with wrong kind")),
        }
    }

    /// Fetches `n_blocks` raw blocks of `archive` starting at
    /// `first_block`. Use [`RawBlock::decode`] to decompress and
    /// CRC-verify each.
    pub fn fetch(
        &mut self,
        archive: &str,
        first_block: u32,
        n_blocks: u32,
    ) -> Result<Vec<RawBlock>, ServeError> {
        let req = Request::Fetch {
            archive: archive.to_string(),
            first_block,
            n_blocks,
        };
        match self.call(&req)? {
            Response::Fetch(blocks) => Ok(blocks),
            _ => Err(ServeError::BadReply("fetch answered with wrong kind")),
        }
    }

    /// Runs a windowed, filtered query server-side; only matching
    /// words come back.
    pub fn query(&mut self, archive: &str, pred: &Predicate) -> Result<QueryResult, ServeError> {
        let req = Request::Query {
            archive: archive.to_string(),
            pred: *pred,
        };
        match self.call(&req)? {
            Response::Query(q) => Ok(q),
            _ => Err(ServeError::BadReply("query answered with wrong kind")),
        }
    }

    /// Like [`Client::query`], retrying `Busy` answers up to
    /// `retries` times with a short backoff — the polite client the
    /// admission gate expects.
    pub fn query_retry(
        &mut self,
        archive: &str,
        pred: &Predicate,
        retries: u32,
    ) -> Result<QueryResult, ServeError> {
        let mut busy = 0u32;
        loop {
            match self.query(archive, pred) {
                Err(ServeError::Busy) if busy < retries => {
                    busy += 1;
                    std::thread::sleep(Duration::from_millis(1 << busy.min(5)));
                }
                other => return other,
            }
        }
    }

    /// Fetches the server's `wrl-obs-metrics/v1` JSON snapshot.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(json) => Ok(json),
            _ => Err(ServeError::BadReply("metrics answered with wrong kind")),
        }
    }

    /// Lists the shards behind a fabric coordinator. A single-node
    /// server answers this with a typed `bad_request` error.
    pub fn shards(&mut self) -> Result<Vec<wire::ShardStatus>, ServeError> {
        match self.call(&Request::Shards)? {
            Response::Shards(rows) => Ok(rows),
            _ => Err(ServeError::BadReply("shards answered with wrong kind")),
        }
    }

    /// Attaches to the live feed named `archive`, filtered by `pred`
    /// server-side. `from_start` replays the feed's history first;
    /// otherwise events begin at the feed head (with `seq` continuing
    /// the filtered-stream offset, so the suffix lines up against a
    /// full `filter_stream`). Read events with [`Client::next_event`].
    pub fn subscribe(
        &mut self,
        archive: &str,
        pred: &Predicate,
        from_start: bool,
    ) -> Result<(), ServeError> {
        if self.sub_id.is_some() {
            return Err(ServeError::BadReply("already subscribed"));
        }
        let id = self.next_id;
        self.next_id += 1;
        let req = Request::Subscribe {
            archive: archive.to_string(),
            pred: *pred,
            from_start,
        };
        self.stream.write_all(&wire::encode_request(id, &req))?;
        let body = self.read_reply()?;
        let (rid, resp) = wire::decode_response(&body)?;
        if rid != id {
            return Err(ServeError::BadReply("response answers a different request"));
        }
        match resp {
            Response::Subscribed => {
                self.sub_id = Some(id);
                Ok(())
            }
            Response::Error { code, msg } => Err(ServeError::Remote { code, msg }),
            _ => Err(ServeError::BadReply("subscribe answered with wrong kind")),
        }
    }

    /// Blocks (within the stall budget) for the next pushed delivery
    /// of the in-force subscription. A `SLOW_CONSUMER` eviction — or
    /// any other server error — surfaces as [`ServeError::Remote`]
    /// and ends the subscription.
    pub fn next_event(&mut self) -> Result<TailItem, ServeError> {
        let sub = self.sub_id.ok_or(ServeError::BadReply("not subscribed"))?;
        let body = self.read_reply()?;
        let (rid, resp) = wire::decode_response(&body)?;
        match resp {
            Response::Event { seq, words } => {
                if rid != sub {
                    return Err(ServeError::BadReply(
                        "event answers a different subscription",
                    ));
                }
                if words.is_empty() {
                    Ok(TailItem::End)
                } else {
                    Ok(TailItem::Event { seq, words })
                }
            }
            Response::Error { code, msg } => {
                self.sub_id = None;
                Err(ServeError::Remote { code, msg })
            }
            _ => Err(ServeError::BadReply("subscription pushed wrong kind")),
        }
    }

    /// Ends the in-force subscription, returning the connection to
    /// ordinary request/response service. Events already in flight
    /// race the ack and are discarded here.
    pub fn unsubscribe(&mut self) -> Result<(), ServeError> {
        if self.sub_id.is_none() {
            return Err(ServeError::BadReply("not subscribed"));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.stream
            .write_all(&wire::encode_request(id, &Request::Unsubscribe))?;
        loop {
            let body = self.read_reply()?;
            let (rid, resp) = wire::decode_response(&body)?;
            match resp {
                Response::Event { .. } => continue,
                Response::Unsubscribed if rid == id => {
                    self.sub_id = None;
                    return Ok(());
                }
                Response::Error { code, msg } => {
                    self.sub_id = None;
                    return Err(ServeError::Remote { code, msg });
                }
                _ => return Err(ServeError::BadReply("unsubscribe answered with wrong kind")),
            }
        }
    }
}
