//! Deterministic connection-state tests: every transition of the
//! reactor's per-connection FSM, driven byte-by-byte through a
//! scripted [`Transport`] — no sockets, no threads, no sleeps, no
//! timing. This is the harness that keeps the nonblocking rewrite
//! honest at byte boundaries the loopback suite can't reliably hit:
//! one-byte reads, a length prefix split across reads, EOF mid-frame,
//! a peer that accepts three bytes at a time, injected short-write
//! and mid-frame-stall shapes, and the stall budgets that cut wedged
//! peers off.

use std::collections::VecDeque;
use std::io;

use wrl_serve::wire::{self, Request, Response};
use wrl_serve::{Conn, ConnState, IoTally, ReadEvent, TickVerdict, Transport, WriteShape};

/// One scripted read result.
enum ReadStep {
    /// Deliver these bytes (possibly fewer if the caller's buffer is
    /// smaller — not exercised; scripts stay under 4096).
    Give(Vec<u8>),
    /// `WouldBlock`: no data right now.
    Block,
    /// Clean EOF from here on.
    Eof,
}

/// One scripted write-acceptance result.
enum WriteStep {
    /// Accept at most this many bytes.
    Accept(usize),
    /// `WouldBlock`: no room right now.
    Block,
    /// Peer closed: `Ok(0)`.
    Closed,
}

/// A transport whose every read and write is scripted in advance.
/// Reads past the script end block; writes past the script end accept
/// everything. Everything written is captured for byte-exact asserts.
#[derive(Default)]
struct Scripted {
    reads: VecDeque<ReadStep>,
    writes: VecDeque<WriteStep>,
    written: Vec<u8>,
    severed: bool,
}

impl Scripted {
    fn new() -> Scripted {
        Scripted::default()
    }

    /// Queues `bytes` split into `step`-sized read fragments, with a
    /// `WouldBlock` after each so every fragment is its own
    /// readability event.
    fn read_fragmented(mut self, bytes: &[u8], step: usize) -> Scripted {
        for chunk in bytes.chunks(step) {
            self.reads.push_back(ReadStep::Give(chunk.to_vec()));
            self.reads.push_back(ReadStep::Block);
        }
        self
    }

    fn read_chunk(mut self, bytes: &[u8]) -> Scripted {
        self.reads.push_back(ReadStep::Give(bytes.to_vec()));
        self
    }

    fn read_block(mut self) -> Scripted {
        self.reads.push_back(ReadStep::Block);
        self
    }

    fn read_eof(mut self) -> Scripted {
        self.reads.push_back(ReadStep::Eof);
        self
    }

    fn write_step(mut self, s: WriteStep) -> Scripted {
        self.writes.push_back(s);
        self
    }
}

impl Transport for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.pop_front() {
            None | Some(ReadStep::Block) => Err(io::ErrorKind::WouldBlock.into()),
            Some(ReadStep::Eof) => {
                // EOF is sticky.
                self.reads.push_front(ReadStep::Eof);
                Ok(0)
            }
            Some(ReadStep::Give(bytes)) => {
                assert!(bytes.len() <= buf.len(), "script fragment exceeds read buf");
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.writes.pop_front() {
            None => {
                self.written.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(WriteStep::Accept(n)) => {
                let n = n.min(buf.len());
                self.written.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            Some(WriteStep::Block) => Err(io::ErrorKind::WouldBlock.into()),
            Some(WriteStep::Closed) => Ok(0),
        }
    }

    fn sever(&mut self) {
        self.severed = true;
    }
}

fn request_frame() -> Vec<u8> {
    wire::encode_request(7, &Request::Catalog)
}

fn response_frame() -> Vec<u8> {
    wire::encode_response(7, &Response::Busy)
}

/// Drives readability events until the transport script is exhausted
/// or the connection leaves `Reading`, returning every event seen.
fn read_until_settled(conn: &mut Conn<Scripted>, tally: &mut IoTally) -> Vec<ReadEvent> {
    let mut events = Vec::new();
    for _ in 0..64 {
        if !conn.wants_read() {
            break;
        }
        let ev = conn.on_readable(tally);
        let done = ev != ReadEvent::Open;
        events.push(ev);
        if done {
            break;
        }
    }
    events
}

#[test]
fn one_byte_reads_assemble_a_request_and_serve_it() {
    let frame = request_frame();
    let t = Scripted::new().read_fragmented(&frame, 1);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    assert_eq!(conn.state(), ConnState::Reading);
    assert!(conn.wants_read());
    assert!(!conn.wants_write());

    read_until_settled(&mut conn, &mut tally);
    assert!(conn.has_frame(), "all fragments in → one buffered frame");
    assert!(
        !conn.wants_read(),
        "a buffered frame parks the read side (one request at a time)"
    );
    // Every fragment but the last left the frame incomplete at a
    // WouldBlock boundary.
    assert_eq!(tally.partial_reads as usize, frame.len() - 1);

    let body = conn.take_frame().expect("frame buffered");
    assert_eq!(conn.state(), ConnState::Dispatching);
    assert_eq!(body, frame[4..].to_vec(), "length prefix stripped");
    let (req_id, req) = wire::decode_request(&body).expect("body decodes");
    assert_eq!(req_id, 7);
    assert!(matches!(req, Request::Catalog));

    let resp = response_frame();
    conn.enqueue(resp.clone(), WriteShape::default(), false);
    assert_eq!(conn.state(), ConnState::Writing);
    assert!(conn.wants_write());
    let wrote = conn.on_writable(&mut tally);
    assert_eq!(wrote, resp.len() as u64);
    assert_eq!(conn.state(), ConnState::Reading, "flushed → next request");
    assert_eq!(conn.transport().written, resp);
    assert!(!conn.transport().severed);
}

#[test]
fn length_prefix_split_across_reads_still_frames_exactly() {
    let frame = request_frame();
    // 2 bytes of the prefix, block, the other 2, block, then the body.
    let t = Scripted::new()
        .read_chunk(&frame[..2])
        .read_block()
        .read_chunk(&frame[2..4])
        .read_block()
        .read_chunk(&frame[4..]);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();

    conn.on_readable(&mut tally);
    assert_eq!(conn.state(), ConnState::Reading);
    assert!(!conn.has_frame());
    assert_eq!(tally.partial_reads, 1, "mid-prefix counts as mid-frame");

    conn.on_readable(&mut tally);
    assert!(!conn.has_frame(), "prefix complete, body outstanding");
    assert_eq!(tally.partial_reads, 2);

    conn.on_readable(&mut tally);
    assert!(conn.has_frame());
    assert_eq!(conn.take_frame().unwrap(), frame[4..].to_vec());
}

#[test]
fn eof_mid_frame_severs_and_eof_at_boundary_is_clean() {
    // Mid-frame: three bytes of prefix, then EOF.
    let frame = request_frame();
    let t = Scripted::new().read_chunk(&frame[..3]).read_eof();
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    let events = read_until_settled(&mut conn, &mut tally);
    assert_eq!(events.last(), Some(&ReadEvent::MidFrameEof));
    assert_eq!(conn.state(), ConnState::Closed);
    assert!(conn.transport().severed);

    // At a boundary: EOF before any byte is a clean goodbye.
    let t = Scripted::new().read_eof();
    let mut conn = Conn::new(t, 100, 100);
    let events = read_until_settled(&mut conn, &mut tally);
    assert_eq!(events.last(), Some(&ReadEvent::Eof));
    assert_eq!(conn.state(), ConnState::Closed);
}

#[test]
fn frames_buffered_before_eof_are_still_served() {
    let frame = request_frame();
    let t = Scripted::new().read_chunk(&frame).read_eof();
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.on_readable(&mut tally);
    assert!(conn.has_frame(), "the frame arrived with the EOF behind it");
    assert!(conn.take_frame().is_some());
    // Serve it, flush it, then the next read pass reports the EOF.
    conn.enqueue(response_frame(), WriteShape::default(), false);
    conn.on_writable(&mut tally);
    assert_eq!(conn.state(), ConnState::Reading);
    assert_eq!(conn.on_readable(&mut tally), ReadEvent::Eof);
    assert_eq!(conn.state(), ConnState::Closed);
}

#[test]
fn write_backpressure_flushes_across_many_events() {
    let resp = response_frame();
    // Peer accepts 3 bytes, blocks, accepts 3, blocks, ... forever.
    let mut t = Scripted::new();
    for _ in 0..resp.len() {
        t = t
            .write_step(WriteStep::Accept(3))
            .write_step(WriteStep::Block);
    }
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.enqueue(resp.clone(), WriteShape::default(), false);

    let mut events = 0;
    let mut total = 0u64;
    while conn.wants_write() {
        total += conn.on_writable(&mut tally);
        events += 1;
        assert!(events <= resp.len(), "flush must terminate");
    }
    assert_eq!(total, resp.len() as u64);
    assert_eq!(events, resp.len().div_ceil(3));
    assert_eq!(conn.state(), ConnState::Reading);
    assert_eq!(conn.transport().written, resp);
    assert!(tally.partial_writes > 0, "every blocked pass was partial");
}

#[test]
fn trickle_shape_caps_bytes_per_event_even_on_a_willing_peer() {
    let resp = response_frame();
    let t = Scripted::new(); // accepts everything offered
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    let shape = WriteShape {
        max_chunk: Some(7),
        stall: None,
    };
    conn.enqueue(resp.clone(), shape, false);

    let mut events = 0;
    while conn.wants_write() {
        let n = conn.on_writable(&mut tally);
        assert!(n <= 7, "never more than the cap per event");
        events += 1;
        assert!(events <= resp.len(), "flush must terminate");
    }
    assert_eq!(events, resp.len().div_ceil(7));
    assert_eq!(
        conn.transport().written,
        resp,
        "bit-identical despite trickle"
    );
    assert_eq!(conn.state(), ConnState::Reading);
}

#[test]
fn stall_shape_pauses_mid_frame_for_exactly_its_ticks() {
    let resp = response_frame();
    let t = Scripted::new();
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    let shape = WriteShape {
        max_chunk: None,
        stall: Some((5, 3)),
    };
    conn.enqueue(resp.clone(), shape, false);

    // First event writes exactly up to the stall point, then pauses.
    conn.on_writable(&mut tally);
    assert_eq!(conn.transport().written.len(), 5);
    assert!(
        !conn.wants_write(),
        "paused: no write interest while stalled"
    );
    // The pause is charged in ticks and never against the budget.
    for _ in 0..3 {
        assert_eq!(conn.on_tick(), TickVerdict::Ok);
    }
    assert!(conn.wants_write(), "pause over, interest returns");
    conn.on_writable(&mut tally);
    assert_eq!(
        conn.transport().written,
        resp,
        "bit-identical despite stall"
    );
    assert_eq!(conn.state(), ConnState::Reading);
}

#[test]
fn read_stall_budget_cuts_a_wedged_mid_frame_peer() {
    let frame = request_frame();
    let t = Scripted::new().read_chunk(&frame[..3]); // then silence
    let mut conn = Conn::new(t, 2, 100);
    let mut tally = IoTally::default();
    conn.on_readable(&mut tally);
    // The first tick after progress resets the flag without charging.
    assert_eq!(conn.on_tick(), TickVerdict::Ok);
    // Then: charge 1, charge 2 (== budget), charge 3 (over) → cut.
    assert_eq!(conn.on_tick(), TickVerdict::Ok);
    assert_eq!(conn.on_tick(), TickVerdict::Ok);
    assert_eq!(conn.on_tick(), TickVerdict::CutOff);
    assert_eq!(conn.state(), ConnState::Closed);
    assert!(conn.transport().severed);
}

#[test]
fn idle_connections_between_frames_are_never_charged() {
    let t = Scripted::new();
    let mut conn = Conn::new(t, 1, 1);
    for _ in 0..100 {
        assert_eq!(conn.on_tick(), TickVerdict::Ok, "idle is free");
    }
    assert_eq!(conn.state(), ConnState::Reading);
}

#[test]
fn write_stall_budget_cuts_a_peer_that_never_drains() {
    let resp = response_frame();
    let mut t = Scripted::new();
    for _ in 0..64 {
        t = t.write_step(WriteStep::Block);
    }
    let mut conn = Conn::new(t, 100, 2);
    let mut tally = IoTally::default();
    conn.enqueue(resp, WriteShape::default(), false);
    conn.on_writable(&mut tally); // WouldBlock: zero progress
    assert_eq!(conn.on_tick(), TickVerdict::Ok); // charge 1
    assert_eq!(conn.on_tick(), TickVerdict::Ok); // charge 2 == budget
    assert_eq!(conn.on_tick(), TickVerdict::CutOff); // over budget
    assert_eq!(conn.state(), ConnState::Closed);
    assert!(conn.transport().severed);
}

#[test]
fn sever_after_cuts_right_after_the_truncated_bytes() {
    let resp = response_frame();
    let cut = resp[..resp.len() / 2].to_vec();
    let t = Scripted::new();
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.enqueue(cut.clone(), WriteShape::default(), true);
    conn.on_writable(&mut tally);
    assert_eq!(conn.state(), ConnState::Closed);
    assert!(conn.transport().severed);
    assert_eq!(conn.transport().written, cut, "only the truncated bytes");
}

#[test]
fn a_closed_peer_mid_write_closes_the_connection() {
    let resp = response_frame();
    let t = Scripted::new()
        .write_step(WriteStep::Accept(4))
        .write_step(WriteStep::Closed);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.enqueue(resp, WriteShape::default(), false);
    conn.on_writable(&mut tally);
    conn.on_writable(&mut tally);
    assert_eq!(conn.state(), ConnState::Closed);
}

#[test]
fn pipelined_frames_in_one_read_are_served_in_order() {
    let a = wire::encode_request(1, &Request::Catalog);
    let b = wire::encode_request(2, &Request::Metrics);
    let both: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
    let t = Scripted::new().read_chunk(&both);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.on_readable(&mut tally);

    let first = conn.take_frame().expect("first frame");
    assert_eq!(wire::decode_request(&first).unwrap().0, 1);
    conn.enqueue(
        wire::encode_response(1, &Response::Busy),
        WriteShape::default(),
        false,
    );
    conn.on_writable(&mut tally);
    assert!(
        conn.has_frame(),
        "second request already buffered, no read needed"
    );
    let second = conn.take_frame().expect("second frame");
    assert_eq!(wire::decode_request(&second).unwrap().0, 2);
}

#[test]
fn bad_length_prefix_is_a_typed_error_then_drain() {
    // A 4-byte prefix claiming a body below the minimum.
    let t = Scripted::new().read_chunk(&3u32.to_le_bytes());
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    let ev = conn.on_readable(&mut tally);
    assert!(matches!(ev, ReadEvent::BadFrame(_)), "typed, not a panic");
    assert_eq!(conn.state(), ConnState::Draining, "no further reads");
    assert!(!conn.wants_read());
    // The server still gets to enqueue the wire-error response; it
    // flushes, then the connection closes.
    let err_frame = wire::encode_response(
        0,
        &Response::Error {
            code: wire::err::WIRE,
            msg: "malformed frame: frame length out of range".into(),
        },
    );
    conn.enqueue(err_frame.clone(), WriteShape::default(), false);
    assert_eq!(conn.state(), ConnState::Draining, "drain sticks");
    conn.on_writable(&mut tally);
    assert_eq!(conn.state(), ConnState::Closed);
    assert_eq!(conn.transport().written, err_frame);
}

#[test]
fn drain_protocol_by_state() {
    // Reading, nothing pending: close immediately.
    let mut conn = Conn::new(Scripted::new(), 100, 100);
    conn.begin_drain();
    assert_eq!(conn.state(), ConnState::Closed);

    // Dispatching: left alone — a response is still owed.
    let frame = request_frame();
    let mut conn = Conn::new(Scripted::new().read_chunk(&frame), 100, 100);
    let mut tally = IoTally::default();
    conn.on_readable(&mut tally);
    conn.take_frame().unwrap();
    conn.begin_drain();
    assert_eq!(conn.state(), ConnState::Dispatching);
    // Its response then drains through the normal write path.
    conn.enqueue(response_frame(), WriteShape::default(), false);
    conn.begin_drain();
    assert_eq!(conn.state(), ConnState::Draining);
    conn.on_writable(&mut tally);
    assert_eq!(conn.state(), ConnState::Closed);

    // Writing with a pending frame: drain, flush, close.
    let mut conn = Conn::new(Scripted::new().write_step(WriteStep::Block), 100, 100);
    conn.enqueue(response_frame(), WriteShape::default(), false);
    conn.on_writable(&mut tally); // blocked: bytes still pending
    conn.begin_drain();
    assert_eq!(conn.state(), ConnState::Draining);
    conn.on_writable(&mut tally); // script exhausted: accepts the rest
    assert_eq!(conn.state(), ConnState::Closed);
}
