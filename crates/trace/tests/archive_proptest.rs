//! Property-based tests of the archive format: encode/decode is the
//! identity on well-formed archives, and `decode` is total — any
//! truncation or byte corruption of the header, table or word
//! sections yields an [`ArchiveError`], never a panic and never an
//! archive that silently differs where the damage landed.

use proptest::collection::vec;
use proptest::prelude::*;
use wrl_isa::Width;
use wrl_trace::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
use wrl_trace::{ArchiveError, TraceArchive};

fn width_of(k: u8) -> Width {
    match k % 3 {
        0 => Width::Byte,
        1 => Width::Half,
        _ => Width::Word,
    }
}

/// Compact generator output for one block: id, n_insts, flag bits,
/// and (index, store, width) per memory op.
type GenBlock = (u32, u16, u8, Vec<(u16, bool, u8)>);

/// Builds a table from compact generator output.
fn table_of(blocks: Vec<GenBlock>) -> BbTable {
    let mut t = BbTable::new();
    for (id, n_insts, flags, ops) in blocks {
        t.insert(
            id,
            BbInfo {
                orig_vaddr: id ^ 0x0040_0000,
                n_insts,
                ops: ops
                    .into_iter()
                    .map(|(index, store, w)| MemOp {
                        index,
                        store,
                        width: width_of(w),
                    })
                    .collect(),
                flags: BbTraceFlags {
                    idle_start: flags & 1 != 0,
                    idle_stop: flags & 2 != 0,
                    hand_traced: flags & 4 != 0,
                },
            },
        );
    }
    t
}

fn block_strategy() -> impl Strategy<Value = GenBlock> {
    (
        any::<u32>(),
        0u16..2000,
        0u8..8,
        vec((any::<u16>(), any::<bool>(), any::<u8>()), 0..5),
    )
}

fn archive_strategy() -> impl Strategy<Value = TraceArchive> {
    (
        vec(block_strategy(), 0..8),
        vec((any::<u8>(), vec(block_strategy(), 0..4)), 0..4),
        vec(any::<u32>(), 0..300),
    )
        .prop_map(|(kernel, users, words)| TraceArchive {
            kernel_table: table_of(kernel),
            user_tables: users
                .into_iter()
                .map(|(asid, blocks)| (asid, table_of(blocks)))
                .collect(),
            words,
        })
}

fn tables_equal(a: &BbTable, b: &BbTable) -> bool {
    a.len() == b.len() && a.iter().all(|(id, info)| b.get(*id) == Some(info))
}

proptest! {
    #[test]
    fn round_trip_is_identity(a in archive_strategy()) {
        let decoded = TraceArchive::decode(&a.encode()).expect("own encoding must decode");
        prop_assert!(tables_equal(&decoded.kernel_table, &a.kernel_table));
        prop_assert_eq!(decoded.user_tables.len(), a.user_tables.len());
        for ((da, dt), (ea, et)) in decoded.user_tables.iter().zip(a.user_tables.iter()) {
            prop_assert_eq!(da, ea);
            prop_assert!(tables_equal(dt, et));
        }
        prop_assert_eq!(&decoded.words, &a.words);
        // And encoding is canonical: a second trip is byte-identical.
        prop_assert_eq!(decoded.encode(), a.encode());
    }

    #[test]
    fn truncation_anywhere_errors_not_panics(
        a in archive_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = a.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Every proper prefix must be rejected (the word count in the
        // header makes even a words-section cut detectable).
        if cut < bytes.len() {
            prop_assert!(TraceArchive::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn header_corruption_is_detected(
        a in archive_strategy(),
        at in 0usize..12,
        xor in 1u8..=255,
    ) {
        // The first 12 bytes are magic + version; flipping any bit in
        // them must produce Malformed or Version, never Io or success.
        let mut bytes = a.encode();
        bytes[at] ^= xor;
        match TraceArchive::decode(&bytes) {
            Err(ArchiveError::Malformed(_)) | Err(ArchiveError::UnsupportedVersion(_)) => {}
            Err(ArchiveError::Io(e)) => prop_assert!(false, "io error from memory: {e}"),
            Ok(_) => prop_assert!(false, "corrupt header accepted"),
        }
    }

    #[test]
    fn body_corruption_never_panics(
        a in archive_strategy(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        // Flipping bits after the header (table and word sections) may
        // legitimately still decode — a corrupted word is just another
        // word — but it must never panic, and on success the byte
        // count consumed must have been consistent (decode returned a
        // structurally valid archive able to re-encode).
        let mut bytes = a.encode();
        if bytes.len() > 12 {
            let at = 12 + ((bytes.len() - 12) as f64 * pos_frac) as usize % (bytes.len() - 12);
            bytes[at] ^= xor;
            if let Ok(arch) = TraceArchive::decode(&bytes) {
                let _ = arch.encode();
            }
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..200)) {
        let _ = TraceArchive::decode(&bytes);
    }
}

#[test]
fn oversized_user_table_count_is_rejected() {
    // 65 user tables exceeds the decoder's hard cap.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(wrl_trace::archive::MAGIC);
    bytes.extend_from_slice(&wrl_trace::archive::VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes()); // empty kernel table
    bytes.extend_from_slice(&65u32.to_le_bytes()); // n_user = 65
    assert!(matches!(
        TraceArchive::decode(&bytes),
        Err(ArchiveError::Malformed(_))
    ));
}
