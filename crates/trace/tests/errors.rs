//! Deterministic classification tests for every defensive check the
//! parser performs (§4.3: "when trace data is damaged... the damage
//! is reported, the simulator state for the afflicted process is
//! discarded, and analysis continues").

use std::sync::Arc;
use wrl_isa::Width;
use wrl_trace::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
use wrl_trace::format::{ctl, CtlOp};
use wrl_trace::parser::ParseError;
use wrl_trace::{CollectSink, TraceParser};

const UBB: u32 = 0x0050_0000;
const KBB: u32 = 0x8003_0000;

fn tables() -> (Arc<BbTable>, Arc<BbTable>) {
    let mut ut = BbTable::new();
    ut.insert(
        UBB,
        BbInfo {
            orig_vaddr: 0x0040_0000,
            n_insts: 3,
            ops: vec![MemOp {
                index: 1,
                store: true,
                width: Width::Word,
            }],
            flags: BbTraceFlags::default(),
        },
    );
    let mut kt = BbTable::new();
    kt.insert(
        KBB,
        BbInfo {
            orig_vaddr: 0x8000_0400,
            n_insts: 2,
            ops: vec![],
            flags: BbTraceFlags::default(),
        },
    );
    (Arc::new(kt), Arc::new(ut))
}

fn parse(words: &[u32]) -> (TraceParser, CollectSink) {
    let (kt, ut) = tables();
    let mut p = TraceParser::new(kt);
    p.set_user_table(7, ut);
    let mut sink = CollectSink::default();
    p.parse_all(words, &mut sink);
    (p, sink)
}

#[test]
fn unknown_block_id_is_reported_and_parsing_continues() {
    // A bogus block id, then a healthy block: the error is localized.
    let words = [ctl(CtlOp::CtxSwitch, 7), 0x0077_0000, UBB, 0x0100_0000];
    let (p, sink) = parse(&words);
    assert_eq!(p.stats.errors, 1);
    assert!(matches!(
        p.errors[0],
        ParseError::UnknownBb {
            word: 0x0077_0000,
            ..
        }
    ));
    assert_eq!(sink.irefs.len(), 3, "the healthy block still parses");
}

#[test]
fn kernel_block_in_user_context_is_wrong_space() {
    let words = [ctl(CtlOp::CtxSwitch, 7), KBB];
    let (p, _) = parse(&words);
    assert!(p
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::WrongSpace { word, .. } if *word == KBB)));
}

#[test]
fn junk_control_word_is_bad_control() {
    // Control range is < 0x10000; opcode 0x3f is unassigned.
    let words = [ctl(CtlOp::CtxSwitch, 7), 0x0000_3f00 | 0x3f];
    let (p, _) = parse(&words);
    assert!(p
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::BadControl { .. })));
}

#[test]
fn stream_ending_mid_block_is_truncation() {
    // UBB owes one memory word that never arrives.
    let words = [ctl(CtlOp::CtxSwitch, 7), UBB];
    let (p, sink) = parse(&words);
    assert!(p.errors.iter().any(|e| matches!(
        e,
        ParseError::Truncated { bb_id, missing: 1 } if *bb_id == UBB
    )));
    // The block's instructions before the missing op were still usable.
    assert!(!sink.irefs.is_empty());
}

#[test]
fn kexit_without_kenter_is_unbalanced() {
    let words = [ctl(CtlOp::CtxSwitch, 7), ctl(CtlOp::KExit, 0)];
    let (p, _) = parse(&words);
    assert!(p
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::UnbalancedKExit { .. })));
}

#[test]
fn missing_user_table_is_reported_once_per_asid() {
    let words = [ctl(CtlOp::CtxSwitch, 9), UBB, UBB];
    let (p, _) = parse(&words);
    let n = p
        .errors
        .iter()
        .filter(|e| matches!(e, ParseError::NoTableForAsid { asid: 9 }))
        .count();
    assert!(n >= 1, "missing table must be reported");
}

#[test]
fn damage_in_one_process_does_not_poison_another() {
    // ASID 9 has no table (damage), ASID 7 is healthy; the healthy
    // stream parses in full despite the interleaved afflicted one.
    let words = [
        ctl(CtlOp::CtxSwitch, 9),
        0x0123_4567,
        ctl(CtlOp::CtxSwitch, 7),
        UBB,
        0x0100_0000,
        ctl(CtlOp::CtxSwitch, 9),
        0x0222_2222,
        ctl(CtlOp::CtxSwitch, 7),
        UBB,
        0x0100_0004,
    ];
    let (p, sink) = parse(&words);
    assert!(p.stats.errors > 0);
    assert_eq!(sink.irefs.len(), 6, "both healthy blocks parse fully");
    assert_eq!(sink.drefs.len(), 2);
}
