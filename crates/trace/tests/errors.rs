//! Deterministic classification tests for every defensive check the
//! parser performs (§4.3: "when trace data is damaged... the damage
//! is reported, the simulator state for the afflicted process is
//! discarded, and analysis continues").

use std::sync::Arc;
use wrl_isa::Width;
use wrl_trace::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
use wrl_trace::format::{ctl, CtlOp};
use wrl_trace::parser::ParseError;
use wrl_trace::{CollectSink, TraceParser};

const UBB: u32 = 0x0050_0000;
const KBB: u32 = 0x8003_0000;

fn tables() -> (Arc<BbTable>, Arc<BbTable>) {
    let mut ut = BbTable::new();
    ut.insert(
        UBB,
        BbInfo {
            orig_vaddr: 0x0040_0000,
            n_insts: 3,
            ops: vec![MemOp {
                index: 1,
                store: true,
                width: Width::Word,
            }],
            flags: BbTraceFlags::default(),
        },
    );
    let mut kt = BbTable::new();
    kt.insert(
        KBB,
        BbInfo {
            orig_vaddr: 0x8000_0400,
            n_insts: 2,
            ops: vec![],
            flags: BbTraceFlags::default(),
        },
    );
    (Arc::new(kt), Arc::new(ut))
}

fn parse(words: &[u32]) -> (TraceParser, CollectSink) {
    let (kt, ut) = tables();
    let mut p = TraceParser::new(kt);
    p.set_user_table(7, ut);
    let mut sink = CollectSink::default();
    p.parse_all(words, &mut sink);
    (p, sink)
}

#[test]
fn unknown_block_id_is_reported_and_parsing_continues() {
    // A bogus block id, then a healthy block: the error is localized.
    let words = [ctl(CtlOp::CtxSwitch, 7), 0x0077_0000, UBB, 0x0100_0000];
    let (p, sink) = parse(&words);
    assert_eq!(p.stats.errors, 1);
    assert!(matches!(
        p.errors[0],
        ParseError::UnknownBb {
            word: 0x0077_0000,
            ..
        }
    ));
    assert_eq!(sink.irefs.len(), 3, "the healthy block still parses");
}

#[test]
fn kernel_block_in_user_context_is_wrong_space() {
    let words = [ctl(CtlOp::CtxSwitch, 7), KBB];
    let (p, _) = parse(&words);
    assert!(p
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::WrongSpace { word, .. } if *word == KBB)));
}

#[test]
fn junk_control_word_is_bad_control() {
    // Control range is < 0x10000; opcode 0x3f is unassigned.
    let words = [ctl(CtlOp::CtxSwitch, 7), 0x0000_3f00 | 0x3f];
    let (p, _) = parse(&words);
    assert!(p
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::BadControl { .. })));
}

#[test]
fn stream_ending_mid_block_is_truncation() {
    // UBB owes one memory word that never arrives.
    let words = [ctl(CtlOp::CtxSwitch, 7), UBB];
    let (p, sink) = parse(&words);
    assert!(p.errors.iter().any(|e| matches!(
        e,
        ParseError::Truncated { bb_id, missing: 1 } if *bb_id == UBB
    )));
    // The block's instructions before the missing op were still usable.
    assert!(!sink.irefs.is_empty());
}

#[test]
fn kexit_without_kenter_is_unbalanced() {
    let words = [ctl(CtlOp::CtxSwitch, 7), ctl(CtlOp::KExit, 0)];
    let (p, _) = parse(&words);
    assert!(p
        .errors
        .iter()
        .any(|e| matches!(e, ParseError::UnbalancedKExit { .. })));
}

#[test]
fn missing_user_table_is_reported_once_per_asid() {
    let words = [ctl(CtlOp::CtxSwitch, 9), UBB, UBB];
    let (p, _) = parse(&words);
    let n = p
        .errors
        .iter()
        .filter(|e| matches!(e, ParseError::NoTableForAsid { asid: 9 }))
        .count();
    assert!(n >= 1, "missing table must be reported");
}

/// One targeted corruption per defensive-check kind, each asserting
/// that exactly the corresponding `trace.parse.error.*` tally (and no
/// other) increments exactly once. A single test function: the
/// tallies are process-global counters, and splitting the cases
/// across parallel tests would race the before/after reads.
#[test]
fn each_defensive_check_tallies_its_counter_exactly_once() {
    let obs = wrl_trace::ParserObs::register();
    let all = [
        "trace.parse.error.unknown_bb",
        "trace.parse.error.wrong_space",
        "trace.parse.error.bad_control",
        "trace.parse.error.truncated",
        "trace.parse.error.unbalanced_kexit",
        "trace.parse.error.no_table_for_asid",
    ];
    let counters = || -> Vec<u64> {
        let snap = wrl_obs::global().snapshot();
        all.iter()
            .map(|name| {
                snap.metrics
                    .iter()
                    .find(|m| m.desc.name == *name)
                    .and_then(|m| match m.value {
                        wrl_obs::ValueSnap::Counter(v) => Some(v),
                        _ => None,
                    })
                    .expect("tally registered")
            })
            .collect()
    };
    let cases: [(&str, Vec<u32>); 6] = [
        // A user block id with no table entry.
        (all[0], vec![ctl(CtlOp::CtxSwitch, 7), 0x0077_0000]),
        // A kernel-range block id in a user context.
        (all[1], vec![ctl(CtlOp::CtxSwitch, 7), KBB]),
        // A control-range word with an unassigned opcode.
        (all[2], vec![ctl(CtlOp::CtxSwitch, 7), 0x0000_3f3f]),
        // A block still owed a memory word at end of stream.
        (all[3], vec![ctl(CtlOp::CtxSwitch, 7), UBB]),
        // A KExit with no matching KEnter.
        (all[4], vec![ctl(CtlOp::CtxSwitch, 7), ctl(CtlOp::KExit, 0)]),
        // A context switch to an ASID with no registered table (the
        // check fires on the switch itself; a block id after it would
        // additionally tally as unknown).
        (all[5], vec![ctl(CtlOp::CtxSwitch, 9)]),
    ];
    for (name, words) in cases {
        let before = counters();
        let (kt, ut) = tables();
        let mut p = TraceParser::new(kt);
        p.set_user_table(7, ut);
        p.attach_obs(obs.clone());
        p.parse_all(&words, &mut CollectSink::default());
        assert!(p.stats.errors >= 1, "{name}: corruption must be reported");
        if wrl_obs::recording() {
            let after = counters();
            for (i, tally) in all.iter().enumerate() {
                let want = u64::from(*tally == name);
                assert_eq!(
                    after[i] - before[i],
                    want,
                    "{name}: tally {tally} moved by {} (want {want})",
                    after[i] - before[i]
                );
            }
        }
    }
}

#[test]
fn damage_in_one_process_does_not_poison_another() {
    // ASID 9 has no table (damage), ASID 7 is healthy; the healthy
    // stream parses in full despite the interleaved afflicted one.
    let words = [
        ctl(CtlOp::CtxSwitch, 9),
        0x0123_4567,
        ctl(CtlOp::CtxSwitch, 7),
        UBB,
        0x0100_0000,
        ctl(CtlOp::CtxSwitch, 9),
        0x0222_2222,
        ctl(CtlOp::CtxSwitch, 7),
        UBB,
        0x0100_0004,
    ];
    let (p, sink) = parse(&words);
    assert!(p.stats.errors > 0);
    assert_eq!(sink.irefs.len(), 6, "both healthy blocks parse fully");
    assert_eq!(sink.drefs.len(), 2);
}
