//! Property-based tests of the trace layer: the parser is total over
//! arbitrary word streams (§4.3's defensive posture — damage is
//! *reported*, never a crash), and round-trips well-formed traces.

use proptest::prelude::*;
use std::sync::Arc;
use wrl_isa::Width;
use wrl_trace::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
use wrl_trace::format::{ctl, CtlOp};
use wrl_trace::{CollectSink, TraceParser};

fn table(blocks: &[(u32, u16, usize)]) -> Arc<BbTable> {
    let mut t = BbTable::new();
    for &(id, n, ops) in blocks {
        t.insert(
            id,
            BbInfo {
                orig_vaddr: 0x0040_0000 + (id & 0xffff),
                n_insts: n,
                ops: (0..ops)
                    .map(|k| MemOp {
                        index: k as u16,
                        store: k % 2 == 1,
                        width: Width::Word,
                    })
                    .collect(),
                flags: BbTraceFlags::default(),
            },
        );
    }
    Arc::new(t)
}

proptest! {
    /// The parser never panics on arbitrary garbage.
    #[test]
    fn parser_is_total(words in proptest::collection::vec(any::<u32>(), 0..600)) {
        let kt = table(&[(0x8003_0000, 4, 1)]);
        let mut p = TraceParser::new(kt);
        p.set_user_table(0, table(&[(0x0050_0000, 3, 2)]));
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        // Words are conserved in the statistics.
        prop_assert_eq!(p.stats.words, words.len() as u64);
    }

    /// A well-formed stream of user blocks parses without error and
    /// reproduces exactly the expected number of references.
    #[test]
    fn well_formed_stream_round_trips(
        blocks in proptest::collection::vec((0usize..4, proptest::collection::vec(any::<u32>(), 0..4)), 1..100)
    ) {
        // Four block shapes with 0..3 memory ops.
        let shapes = [
            (0x0050_0000u32, 4u16, 0usize),
            (0x0050_0100, 2, 1),
            (0x0050_0200, 5, 2),
            (0x0050_0300, 3, 3),
        ];
        let ut = table(&shapes);
        let mut words = vec![ctl(CtlOp::CtxSwitch, 7)];
        let mut want_i = 0u64;
        let mut want_d = 0u64;
        for (shape, addrs) in &blocks {
            let (id, n, ops) = shapes[*shape];
            words.push(id);
            for k in 0..ops {
                // Any value >= 2^16 parses as an address word.
                words.push(0x0100_0000 + addrs.get(k).copied().unwrap_or(0) % 0x0010_0000);
            }
            want_i += n as u64;
            want_d += ops as u64;
        }
        let mut p = TraceParser::new(table(&[]));
        p.set_user_table(7, ut);
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        prop_assert_eq!(p.stats.errors, 0, "errors: {:?}", p.errors);
        prop_assert_eq!(sink.irefs.len() as u64, want_i);
        prop_assert_eq!(sink.drefs.len() as u64, want_d);
    }

    /// Interposing balanced kernel entries at arbitrary points never
    /// corrupts the user stream's reference counts.
    #[test]
    fn kernel_interleaving_preserves_user_counts(cut in 0usize..12, nest in 1usize..4) {
        let ut = table(&[(0x0050_0200, 5, 2)]);
        let kt = table(&[(0x8003_0000, 2, 0)]);
        // Base stream: ctx, 3 blocks of (bb + 2 mem words).
        let mut words = vec![ctl(CtlOp::CtxSwitch, 1)];
        for _ in 0..3 {
            words.extend_from_slice(&[0x0050_0200, 0x0100_0000, 0x0100_0004]);
        }
        // Inject a balanced nest at `cut`.
        let mut nest_words = Vec::new();
        for _ in 0..nest {
            nest_words.push(ctl(CtlOp::KEnter, 0));
            nest_words.push(0x8003_0000);
        }
        for _ in 0..nest {
            nest_words.push(ctl(CtlOp::KExit, 0));
        }
        let at = 1 + cut.min(words.len() - 1);
        for (k, w) in nest_words.into_iter().enumerate() {
            words.insert(at + k, w);
        }
        let mut p = TraceParser::new(kt);
        p.set_user_table(1, ut);
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        prop_assert_eq!(p.stats.errors, 0, "errors: {:?}", p.errors);
        let user_i = sink.irefs.iter().filter(|r| matches!(r.1, wrl_trace::Space::User(1))).count();
        prop_assert_eq!(user_i, 15);
        prop_assert_eq!(sink.drefs.iter().filter(|d| matches!(d.2, wrl_trace::Space::User(1))).count(), 6);
    }
}

fn table_entries(t: &BbTable) -> Vec<(u32, BbInfo)> {
    let mut v: Vec<_> = t.iter().map(|(id, info)| (*id, info.clone())).collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

proptest! {
    /// Archives round-trip words and every table entry exactly.
    #[test]
    fn archive_roundtrips(
        words in proptest::collection::vec(any::<u32>(), 0..400),
        kblocks in proptest::collection::vec((0x8000_0000u32..0x8100_0000, 1u16..64, 0usize..4), 1..20),
        ublocks in proptest::collection::vec((0x0040_0000u32..0x0100_0000, 1u16..64, 0usize..4), 1..20),
        asid in 0u8..63,
    ) {
        let arch = wrl_trace::TraceArchive {
            kernel_table: (*table(&kblocks)).clone(),
            user_tables: vec![(asid, (*table(&ublocks)).clone())],
            words: words.clone(),
        };
        let back = wrl_trace::TraceArchive::decode(&arch.encode()).unwrap();
        prop_assert_eq!(&back.words, &words);
        prop_assert_eq!(back.user_tables.len(), 1);
        prop_assert_eq!(back.user_tables[0].0, asid);
        prop_assert_eq!(
            table_entries(&back.kernel_table),
            table_entries(&arch.kernel_table)
        );
        prop_assert_eq!(
            table_entries(&back.user_tables[0].1),
            table_entries(&arch.user_tables[0].1)
        );
    }

    /// Decoding is total: corrupt bytes produce an error, never a panic.
    #[test]
    fn archive_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = wrl_trace::TraceArchive::decode(&bytes);
    }

    /// Truncating a valid archive at any point is caught as an error
    /// (or decodes to the same words — never garbage).
    #[test]
    fn archive_truncation_is_detected(
        words in proptest::collection::vec(any::<u32>(), 1..100),
        cut_frac in 0.0f64..1.0,
    ) {
        let arch = wrl_trace::TraceArchive {
            kernel_table: BbTable::new(),
            user_tables: vec![],
            words: words.clone(),
        };
        let enc = arch.encode();
        let cut = (enc.len() as f64 * cut_frac) as usize;
        if let Ok(a) = wrl_trace::TraceArchive::decode(&enc[..cut]) { prop_assert_eq!(a.words, words) }
    }
}

proptest! {
    /// Incremental parsing (`push_words` per chunk + one `finish`)
    /// produces exactly the same reference stream as a single
    /// `parse_all`, for any chunking — the §3.3 online-analysis case
    /// where a basic block's address words straddle a buffer drain.
    #[test]
    fn chunked_parse_equals_oneshot(
        blocks in proptest::collection::vec((0usize..4, proptest::collection::vec(any::<u32>(), 0..4)), 1..60),
        cuts in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let shapes = [
            (0x0050_0000u32, 4u16, 0usize),
            (0x0050_0100, 2, 1),
            (0x0050_0200, 5, 2),
            (0x0050_0300, 3, 3),
        ];
        let mut words = vec![ctl(CtlOp::CtxSwitch, 7)];
        for (shape, addrs) in &blocks {
            let (id, _, ops) = shapes[*shape];
            words.push(id);
            for k in 0..ops {
                words.push(0x0100_0000 + addrs.get(k).copied().unwrap_or(0) % 0x0010_0000);
            }
        }

        let mut one = CollectSink::default();
        let mut p1 = TraceParser::new(table(&[]));
        p1.set_user_table(7, table(&shapes));
        p1.parse_all(&words, &mut one);

        let mut many = CollectSink::default();
        let mut p2 = TraceParser::new(table(&[]));
        p2.set_user_table(7, table(&shapes));
        let mut bounds: Vec<usize> =
            cuts.iter().map(|&c| c as usize % (words.len() + 1)).collect();
        bounds.push(0);
        bounds.push(words.len());
        bounds.sort_unstable();
        for w in bounds.windows(2) {
            p2.push_words(&words[w[0]..w[1]], &mut many);
        }
        p2.finish(&mut many);

        prop_assert_eq!(p1.stats.errors, 0);
        prop_assert_eq!(p2.stats.errors, 0);
        prop_assert_eq!(one.irefs, many.irefs);
        prop_assert_eq!(one.drefs, many.drefs);
    }
}
