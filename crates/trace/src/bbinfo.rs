//! Static basic-block information tables.
//!
//! Mahler and epoxie "generate static information describing each
//! basic block (number of instructions, position of loads and
//! stores). This information is used when the trace is analyzed, to
//! determine the correct interleaving of instruction and data memory
//! references." (§3.5.) In the Ultrix/Mach systems only the bb
//! address is written to the trace; the parsing library looks the
//! address up here. The lookup also carries the per-block special
//! behaviours: idle-loop counter flags and hand-traced markers.

use std::collections::HashMap;
use wrl_isa::Width;

/// One load or store within a basic block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// Index of the memory instruction within the block (0-based, in
    /// terms of *original* instructions).
    pub index: u16,
    /// True for stores.
    pub store: bool,
    /// Access width.
    pub width: Width,
}

/// Flags attached to a basic block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BbTraceFlags {
    /// Entering this block starts the idle-loop instruction counter.
    pub idle_start: bool,
    /// Entering this block stops the idle-loop instruction counter.
    pub idle_stop: bool,
    /// The block's record was emitted by hand-instrumented code.
    pub hand_traced: bool,
}

/// Static description of one basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BbInfo {
    /// Address of the block in the *uninstrumented* binary — what the
    /// simulator sees ("the addresses seen by the simulator correspond
    /// to the uninstrumented binary", §3.2).
    pub orig_vaddr: u32,
    /// Number of original instructions in the block.
    pub n_insts: u16,
    /// The memory operations, in order.
    pub ops: Vec<MemOp>,
    /// Special behaviours.
    pub flags: BbTraceFlags,
}

impl BbInfo {
    /// Trace words this block generates: one bb word plus one word per
    /// memory operation (the count epoxie plants in the `li zero, n`
    /// delay-slot no-op).
    pub fn trace_words(&self) -> u32 {
        1 + self.ops.len() as u32
    }
}

/// The basic-block lookup table for one binary.
///
/// Keys are *basic-block ids*: the return address that `jal bbtrace`
/// stores, i.e. an address inside the instrumented text.
#[derive(Clone, Debug, Default)]
pub struct BbTable {
    map: HashMap<u32, BbInfo>,
}

impl BbTable {
    /// Creates an empty table.
    pub fn new() -> BbTable {
        BbTable::default()
    }

    /// Inserts a block under its id.
    pub fn insert(&mut self, bb_id: u32, info: BbInfo) {
        self.map.insert(bb_id, info);
    }

    /// Looks up a block by id.
    pub fn get(&self, bb_id: u32) -> Option<&BbInfo> {
        self.map.get(&bb_id)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(bb_id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &BbInfo)> {
        self.map.iter()
    }

    /// Total original instructions across all blocks (static count).
    pub fn static_insts(&self) -> u64 {
        self.map.values().map(|b| b.n_insts as u64).sum()
    }

    /// Merges another table into this one (kernel = epoxie-rewritten
    /// objects + hand-traced entries).
    pub fn merge(&mut self, other: BbTable) {
        self.map.extend(other.map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(orig: u32, n: u16, ops: Vec<MemOp>) -> BbInfo {
        BbInfo {
            orig_vaddr: orig,
            n_insts: n,
            ops,
            flags: BbTraceFlags::default(),
        }
    }

    #[test]
    fn trace_word_counts() {
        let b = info(
            0x400000,
            5,
            vec![
                MemOp {
                    index: 1,
                    store: true,
                    width: Width::Word,
                },
                MemOp {
                    index: 2,
                    store: false,
                    width: Width::Byte,
                },
            ],
        );
        assert_eq!(b.trace_words(), 3);
    }

    #[test]
    fn table_lookup_and_merge() {
        let mut t = BbTable::new();
        t.insert(0x500000, info(0x400000, 3, vec![]));
        let mut u = BbTable::new();
        u.insert(0x500100, info(0x400040, 2, vec![]));
        t.merge(u);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0x500000).unwrap().orig_vaddr, 0x400000);
        assert_eq!(t.static_insts(), 5);
        assert!(t.get(0xdead).is_none());
    }
}
