//! On-the-fly streaming trace analysis.
//!
//! The paper's tracing system analyses the trace *while it is being
//! generated*: the kernel fills a trace buffer, and on every
//! buffer-full interrupt the analysis program drains it before
//! execution resumes (§3.2, "on-the-fly analysis"). This module is
//! the software analogue: a bounded double-buffer channel between the
//! producer (the simulated machine draining its kernel trace buffer)
//! and a small pipeline of consumer threads running [`TraceParser`]
//! and a [`TraceSink`] (typically the memory-system simulator)
//! incrementally, so cache/TLB simulation overlaps machine execution.
//!
//! # Topology
//!
//! `workers` selects how many consumer threads the pipeline owns.
//! Parsing and simulation are inherently sequential state machines, so
//! the pipeline scales by *stage*, never by sharding the stream —
//! which is what keeps every configuration bit-identical:
//!
//! ```text
//! workers = 1:  feed ─(inline, same thread)─▶ parse+sink
//! workers = 2:  feed ──chunks──▶ [parse] ──events──▶ [sink]
//! workers = 3:  feed ──chunks──▶ [decode] ──classified──▶ [parse] ──events──▶ [sink]
//! workers = 4:  feed ──chunks──▶ [decode ×2] ─(reordered by seq)──▶ [parse] ──events──▶ [sink]
//! ```
//!
//! The decode stage runs [`classify`], which is pure and per-word;
//! with two decoders, chunks may finish out of order, so the parse
//! stage reorders them by sequence number before consuming. The
//! parser therefore always sees the exact word order of the raw
//! stream, and the sink always sees the exact event order the parser
//! emitted — results are independent of chunk size and worker count
//! by construction.
//!
//! # Backpressure
//!
//! Every channel is a bounded [`sync_channel`] of depth
//! [`PipelineCfg::depth`] (default 2 — classic double buffering: one
//! chunk in flight, one being filled). When a consumer falls behind,
//! `feed` blocks, exactly like the traced kernel stalling on a full
//! trace buffer. No unbounded queue can hide a slow consumer. With a
//! single worker there is no channel at all: `feed` analyses the
//! words before returning, the strictest backpressure there is.

use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::format::{classify, TraceWord};
use crate::parser::{ParseError, ParseStats, Space, TraceParser, TraceSink};
use wrl_isa::Width;
use wrl_obs::{counter, gauge, global, histogram, span, Counter, Gauge, Histogram, Span};

/// `wrl-obs` metrics for the streaming pipeline, registered by every
/// [`Pipeline::new`] (registration is idempotent; all pipelines in a
/// process share the counters). Queue-depth gauges and the
/// backpressure span are exactly the §3.2 behaviour the paper's
/// analysis program exhibits when it falls behind the generator.
#[derive(Clone)]
pub struct StreamObs {
    pub(crate) chunks: Arc<Counter>,
    pub(crate) words: Arc<Counter>,
    pub(crate) chunk_words: Arc<Histogram>,
    pub(crate) stall: Arc<Span>,
    pub(crate) q_chunks: Arc<Gauge>,
    pub(crate) q_events: Arc<Gauge>,
    pub(crate) parse_words: Arc<Counter>,
    pub(crate) sink_events: Arc<Counter>,
    pub(crate) sink_batches: Arc<Counter>,
    pub(crate) lost_chunks: Arc<Counter>,
}

impl StreamObs {
    /// Registers the `stream.*` metrics in the global registry.
    pub fn register() -> StreamObs {
        let r = global();
        StreamObs {
            chunks: counter!(
                r,
                "stream.chunks",
                "chunks",
                "§3.2",
                "Chunks shipped into the pipeline."
            ),
            words: counter!(
                r,
                "stream.words",
                "words",
                "§3.2",
                "Raw trace words fed to the pipeline."
            ),
            chunk_words: histogram!(
                r,
                "stream.chunk.words",
                "words",
                "§3.2",
                "Distribution of chunk sizes (words per shipped chunk)."
            ),
            stall: span!(
                r,
                "stream.backpressure.stall",
                "ns",
                "§3.2",
                "Producer time spent blocked shipping chunks (one record per send; total is the backpressure stall)."
            ),
            q_chunks: gauge!(
                r,
                "stream.queue.chunks",
                "chunks",
                "§3.2",
                "Producer→consumer chunk-channel occupancy (high = deepest backlog)."
            ),
            q_events: gauge!(
                r,
                "stream.queue.events",
                "batches",
                "§3.2",
                "Parse→sink event-batch channel occupancy (high = deepest backlog)."
            ),
            parse_words: counter!(
                r,
                "stream.parse.words",
                "words",
                "§3.3",
                "Words consumed by the parse stage (stage throughput)."
            ),
            sink_events: counter!(
                r,
                "stream.sink.events",
                "events",
                "§3.3",
                "Reference events applied to the sink stage."
            ),
            sink_batches: counter!(
                r,
                "stream.sink.batches",
                "batches",
                "§3.3",
                "Event batches delivered to the sink stage."
            ),
            lost_chunks: counter!(
                r,
                "stream.chunks.lost",
                "chunks",
                "§4.3",
                "Chunks shipped but never parsed (lost buffers; 0 on a healthy pipeline)."
            ),
        }
    }
}

/// A run of raw trace words handed from producer to consumer, tagged
/// with its position in the stream.
#[derive(Clone, Debug)]
pub struct TraceChunk {
    /// Zero-based position of this chunk in the stream.
    pub seq: u64,
    /// The raw trace words.
    pub words: Vec<u32>,
}

/// One parsed reference event, as emitted by [`TraceParser`] into a
/// [`TraceSink`]. `StreamSink` batches these across a channel so the
/// parse and simulate stages can run on different threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefEvent {
    /// An instruction fetch.
    Iref {
        /// Uninstrumented virtual address.
        vaddr: u32,
        /// Owning address space.
        space: Space,
        /// Whether the block is idle-marked.
        idle: bool,
    },
    /// A data reference.
    Dref {
        /// Virtual address.
        vaddr: u32,
        /// Store (vs. load).
        store: bool,
        /// Access width.
        width: Width,
        /// Owning address space.
        space: Space,
    },
    /// The base context switched to the given ASID.
    CtxSwitch(u8),
    /// Trace generation suspended (`false`) or resumed (`true`).
    ModeTransition(bool),
}

impl RefEvent {
    /// Replays this event into a sink.
    pub fn apply(self, sink: &mut dyn TraceSink) {
        match self {
            RefEvent::Iref { vaddr, space, idle } => sink.iref(vaddr, space, idle),
            RefEvent::Dref {
                vaddr,
                store,
                width,
                space,
            } => sink.dref(vaddr, store, width, space),
            RefEvent::CtxSwitch(asid) => sink.ctx_switch(asid),
            RefEvent::ModeTransition(g) => sink.mode_transition(g),
        }
    }
}

/// A [`TraceSink`] that simply buffers every event in order, for
/// later replay with [`RefEvent::apply`]. Lets a caller separate the
/// *parse* and *simulate* phases of a batch analysis (the metered
/// harness times them individually) without changing what the
/// downstream sink observes.
#[derive(Clone, Debug, Default)]
pub struct EventVec(pub Vec<RefEvent>);

impl TraceSink for EventVec {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        self.0.push(RefEvent::Iref { vaddr, space, idle });
    }

    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space) {
        self.0.push(RefEvent::Dref {
            vaddr,
            store,
            width,
            space,
        });
    }

    fn ctx_switch(&mut self, asid: u8) {
        self.0.push(RefEvent::CtxSwitch(asid));
    }

    fn mode_transition(&mut self, generating: bool) {
        self.0.push(RefEvent::ModeTransition(generating));
    }
}

/// A [`TraceSink`] that forwards events over a bounded channel in
/// batches, preserving order. Used as the bridge between the parse
/// stage and a downstream consumer thread.
pub struct StreamSink {
    tx: SyncSender<Vec<RefEvent>>,
    batch: Vec<RefEvent>,
    batch_events: usize,
    queue: Option<Arc<Gauge>>,
}

impl StreamSink {
    /// Creates a sink batching up to `batch_events` events per send.
    pub fn new(tx: SyncSender<Vec<RefEvent>>, batch_events: usize) -> StreamSink {
        let batch_events = batch_events.max(1);
        StreamSink {
            tx,
            batch: Vec::with_capacity(batch_events),
            batch_events,
            queue: None,
        }
    }

    /// Attaches a queue-occupancy gauge, incremented per delivered
    /// batch (the receiver decrements it).
    pub fn gauged(mut self, queue: Arc<Gauge>) -> StreamSink {
        self.queue = Some(queue);
        self
    }

    fn push(&mut self, ev: RefEvent) {
        self.batch.push(ev);
        if self.batch.len() >= self.batch_events {
            self.flush();
        }
    }

    /// Sends any buffered events now. A send failure means the
    /// consumer is gone; the events are dropped here and the
    /// consumer's panic (if any) surfaces when the pipeline joins it.
    pub fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(self.batch_events));
        // Occupancy goes up before the send; see `Pipeline::ship`.
        if let Some(q) = &self.queue {
            q.add(1);
        }
        if self.tx.send(batch).is_err() {
            if let Some(q) = &self.queue {
                q.add(-1);
            }
        }
    }
}

impl TraceSink for StreamSink {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        self.push(RefEvent::Iref { vaddr, space, idle });
    }

    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space) {
        self.push(RefEvent::Dref {
            vaddr,
            store,
            width,
            space,
        });
    }

    fn ctx_switch(&mut self, asid: u8) {
        self.push(RefEvent::CtxSwitch(asid));
    }

    fn mode_transition(&mut self, generating: bool) {
        self.push(RefEvent::ModeTransition(generating));
    }
}

/// Which pipeline stage a [`ChaosHooks`] decision applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageSite {
    /// A decode worker received the chunk (topologies with 3–4
    /// workers). Stalling one of two decoders makes chunks finish out
    /// of order, exercising the parse stage's sequence reordering.
    Decode,
    /// The parse stage is about to consume the chunk (every topology).
    Parse,
}

/// What a [`ChaosHooks`] callback decides to do with one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkFate {
    /// Process the chunk normally.
    Deliver,
    /// Sleep first, then process. A stall may only cost throughput —
    /// backpressure and the sequence reorder must absorb it without
    /// changing any result.
    Stall(Duration),
    /// Discard the chunk (a lost trace buffer). The pipeline must
    /// *detect* this: the chunk is counted in
    /// [`PipelineReport::lost_chunks`], never silently absorbed.
    Drop,
}

/// Deterministic perturbation hooks for chaos-testing the pipeline
/// (see the `wrl-fault` crate). The callback is consulted once per
/// chunk at each stage boundary it crosses; [`ChaosHooks::default`]
/// delivers everything and adds no per-chunk cost beyond an
/// `Option` check.
#[derive(Clone, Default)]
pub struct ChaosHooks {
    chunk: Option<Arc<dyn Fn(StageSite, u64) -> ChunkFate + Send + Sync>>,
}

impl ChaosHooks {
    /// Hooks that consult `f` with (stage, chunk sequence number) for
    /// every chunk crossing a stage boundary.
    pub fn on_chunk(f: impl Fn(StageSite, u64) -> ChunkFate + Send + Sync + 'static) -> ChaosHooks {
        ChaosHooks {
            chunk: Some(Arc::new(f)),
        }
    }

    /// Resolves the fate of one chunk at one site, sleeping out any
    /// stall here. Returns `false` if the chunk is to be dropped.
    fn deliver(&self, site: StageSite, seq: u64) -> bool {
        match &self.chunk {
            None => true,
            Some(f) => match f(site, seq) {
                ChunkFate::Deliver => true,
                ChunkFate::Stall(d) => {
                    std::thread::sleep(d);
                    true
                }
                ChunkFate::Drop => false,
            },
        }
    }
}

/// Pipeline shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct PipelineCfg {
    /// Words per chunk handed to the consumer side. `feed` accepts
    /// arbitrary slices and re-chunks to this size.
    pub chunk_words: usize,
    /// Bound of every inter-stage channel, in chunks/batches. 2 is
    /// classic double buffering.
    pub depth: usize,
    /// Consumer stages, clamped to 1..=4 (see module docs for the
    /// topology each count selects). 1 runs parse+sink inline on the
    /// caller's thread; 2..=4 spawn that many consumer threads.
    pub workers: usize,
    /// Events per batch on the parse→sink channel (stage topologies
    /// with a separate sink thread only).
    pub batch_events: usize,
}

impl Default for PipelineCfg {
    /// Defaults to the fused single-worker topology on a single-CPU
    /// host (a second stage there only adds cross-thread event
    /// traffic) and the parse|simulate split when real parallelism is
    /// available.
    fn default() -> PipelineCfg {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(2))
            .unwrap_or(1);
        PipelineCfg {
            chunk_words: 4096,
            depth: 2,
            workers,
            batch_events: 8192,
        }
    }
}

/// What a finished pipeline reports: the parser's statistics and
/// errors, plus chunk accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Parser statistics, identical to a batch `parse_all`.
    pub parse: ParseStats,
    /// Parse errors in stream order (first few kept in detail).
    pub errors: Vec<ParseError>,
    /// Chunks shipped through the pipeline.
    pub chunks: u64,
    /// Raw words shipped.
    pub words: u64,
    /// Chunks shipped but never consumed by the parse stage. Always 0
    /// in normal operation; a lost trace buffer (e.g. an injected
    /// [`ChunkFate::Drop`]) is *detected* here rather than silently
    /// shortening the stream.
    pub lost_chunks: u64,
}

/// Result of parsing on the consumer side: stats, detailed errors,
/// and the number of chunks the parse stage actually consumed.
type ParseOutcome = (ParseStats, Vec<ParseError>, u64);

enum Tail<S> {
    /// workers = 1: parser and sink run fused on the producer's own
    /// thread — no channel, no thread, no hand-off copy. `feed`
    /// itself is the backpressure: it returns only when the words
    /// are analysed, exactly like the paper's analysis program
    /// holding the traced system stopped while it drains the buffer.
    Inline(Box<(TraceParser, S)>),
    /// workers ≥ 2: parse and sink stages on separate threads.
    Split {
        parse: JoinHandle<ParseOutcome>,
        sink: JoinHandle<S>,
    },
}

/// A running streaming-analysis pipeline. Construct with
/// [`Pipeline::new`], push trace words with [`Pipeline::feed`] (e.g.
/// from the machine's buffer-drain callback), then call
/// [`Pipeline::finish`] to join the workers and collect the sink and
/// report. Dropping without `finish` detaches the threads after the
/// channel closes (they drain and exit).
pub struct Pipeline<S: TraceSink + Send + 'static> {
    tx: Option<SyncSender<TraceChunk>>,
    decoders: Vec<JoinHandle<()>>,
    tail: Option<Tail<S>>,
    pend: Vec<u32>,
    seq: u64,
    chunks: u64,
    words: u64,
    consumed: u64,
    cfg: PipelineCfg,
    hooks: ChaosHooks,
    obs: StreamObs,
}

impl<S: TraceSink + Send + 'static> Pipeline<S> {
    /// Spawns the consumer stage(s) for `cfg.workers` and returns the
    /// producer handle. `parser` carries the basic-block tables (and
    /// any pre-run wiring); `sink` is returned by value from
    /// [`Pipeline::finish`].
    pub fn new(parser: TraceParser, sink: S, cfg: PipelineCfg) -> Pipeline<S> {
        Pipeline::with_hooks(parser, sink, cfg, ChaosHooks::default())
    }

    /// Like [`Pipeline::new`], with fault-injection hooks consulted at
    /// each stage boundary. Used by the `wrl-fault` chaos campaign;
    /// production callers use `new` (equivalent to default hooks).
    pub fn with_hooks(
        parser: TraceParser,
        sink: S,
        cfg: PipelineCfg,
        hooks: ChaosHooks,
    ) -> Pipeline<S> {
        let cfg = PipelineCfg {
            chunk_words: cfg.chunk_words.max(1),
            depth: cfg.depth.max(1),
            workers: cfg.workers.clamp(1, 4),
            batch_events: cfg.batch_events.max(1),
        };
        let obs = StreamObs::register();
        if cfg.workers == 1 {
            return Pipeline {
                tx: None,
                decoders: Vec::new(),
                tail: Some(Tail::Inline(Box::new((parser, sink)))),
                pend: Vec::new(),
                seq: 0,
                chunks: 0,
                words: 0,
                consumed: 0,
                cfg,
                hooks,
                obs,
            };
        }
        let (tx, rx) = sync_channel::<TraceChunk>(cfg.depth);
        let tail = match cfg.workers {
            2 => {
                let (ev_tx, ev_rx) = sync_channel::<Vec<RefEvent>>(cfg.depth);
                Tail::Split {
                    parse: spawn_parse_raw(
                        rx,
                        parser,
                        ev_tx,
                        cfg.batch_events,
                        hooks.clone(),
                        obs.clone(),
                    ),
                    sink: spawn_sink(ev_rx, sink, obs.clone()),
                }
            }
            n => {
                // One or two decode workers feeding a reordering
                // parse stage, then the sink stage.
                let (dec_tx, dec_rx) = sync_channel::<DecodedChunk>(cfg.depth);
                let shared = Arc::new(Mutex::new(rx));
                let decoders = (0..n - 2)
                    .map(|i| {
                        spawn_decoder(
                            i,
                            Arc::clone(&shared),
                            dec_tx.clone(),
                            hooks.clone(),
                            obs.clone(),
                        )
                    })
                    .collect::<Vec<_>>();
                drop(dec_tx);
                let (ev_tx, ev_rx) = sync_channel::<Vec<RefEvent>>(cfg.depth);
                let parse = spawn_parse_decoded(
                    dec_rx,
                    parser,
                    ev_tx,
                    cfg.batch_events,
                    hooks.clone(),
                    obs.clone(),
                );
                let sink = spawn_sink(ev_rx, sink, obs.clone());
                return Pipeline {
                    tx: Some(tx),
                    decoders,
                    tail: Some(Tail::Split { parse, sink }),
                    pend: Vec::new(),
                    seq: 0,
                    chunks: 0,
                    words: 0,
                    consumed: 0,
                    cfg,
                    hooks,
                    obs,
                };
            }
        };
        Pipeline {
            tx: Some(tx),
            decoders: Vec::new(),
            tail: Some(tail),
            pend: Vec::new(),
            seq: 0,
            chunks: 0,
            words: 0,
            consumed: 0,
            cfg,
            hooks,
            obs,
        }
    }

    /// Pushes raw trace words into the pipeline, blocking when the
    /// consumer side is `cfg.depth` chunks behind (backpressure).
    /// Slices of any size are accepted and re-chunked to
    /// `cfg.chunk_words`.
    pub fn feed(&mut self, words: &[u32]) {
        self.words += words.len() as u64;
        self.obs.words.add(words.len() as u64);
        let mut rest = words;
        // Top up a pending partial chunk first.
        if !self.pend.is_empty() {
            let need = self.cfg.chunk_words - self.pend.len();
            let take = need.min(rest.len());
            self.pend.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.pend.len() == self.cfg.chunk_words {
                let full = std::mem::take(&mut self.pend);
                self.ship(full);
            }
        }
        while rest.len() >= self.cfg.chunk_words {
            let (head, tail) = rest.split_at(self.cfg.chunk_words);
            self.ship(head.to_vec());
            rest = tail;
        }
        self.pend.extend_from_slice(rest);
    }

    /// Like [`Pipeline::feed`], but takes ownership of the buffer and
    /// ships it as a single chunk without re-chunking or copying —
    /// the zero-copy path for producers that already hand over whole
    /// drained buffers. Chunk-size configuration only affects
    /// backpressure granularity, never results, so mixing `feed` and
    /// `feed_owned` is fine.
    pub fn feed_owned(&mut self, words: Vec<u32>) {
        if words.is_empty() {
            return;
        }
        self.words += words.len() as u64;
        self.obs.words.add(words.len() as u64);
        if !self.pend.is_empty() {
            let partial = std::mem::take(&mut self.pend);
            self.ship(partial);
        }
        self.ship(words);
    }

    fn ship(&mut self, words: Vec<u32>) {
        let seq = self.seq;
        self.seq += 1;
        self.chunks += 1;
        self.obs.chunks.inc();
        self.obs.chunk_words.record(words.len() as u64);
        if let Some(Tail::Inline(fused)) = self.tail.as_mut() {
            if !self.hooks.deliver(StageSite::Parse, seq) {
                return;
            }
            self.consumed += 1;
            self.obs.parse_words.add(words.len() as u64);
            let (parser, sink) = &mut **fused;
            for &w in &words {
                parser.push_word(w, sink);
            }
            return;
        }
        if let Some(tx) = &self.tx {
            // A send failure means a worker died; keep accepting input
            // and surface the worker's panic when `finish` joins it.
            // The span covers the send itself: when the channel is
            // full this is exactly the producer's backpressure stall.
            // The occupancy gauge goes up *before* the send — once the
            // send completes the consumer may already have drained (and
            // decremented) the chunk.
            let _t = self.obs.stall.start();
            self.obs.q_chunks.add(1);
            if tx.send(TraceChunk { seq, words }).is_err() {
                self.obs.q_chunks.add(-1);
            }
        }
    }

    /// Flushes the final partial chunk, closes the channel, joins all
    /// workers and returns the finalised report plus the sink. The
    /// parser's `finish` runs on the consumer side, so partial blocks
    /// are flushed exactly as `parse_all` would.
    pub fn finish(mut self) -> (PipelineReport, S) {
        if !self.pend.is_empty() {
            let last = std::mem::take(&mut self.pend);
            self.ship(last);
        }
        drop(self.tx.take());
        for d in self.decoders.drain(..) {
            join_or_propagate(d);
        }
        let ((parse, errors, consumed), sink) = match self.tail.take().expect("finish called once")
        {
            Tail::Inline(fused) => {
                let (mut parser, mut sink) = *fused;
                parser.finish(&mut sink);
                (
                    (
                        parser.stats.clone(),
                        std::mem::take(&mut parser.errors),
                        self.consumed,
                    ),
                    sink,
                )
            }
            Tail::Split { parse, sink } => (join_or_propagate(parse), join_or_propagate(sink)),
        };
        // Every shipped chunk must have reached the parse stage; any
        // shortfall is a lost buffer, counted so a drop anywhere in
        // the pipeline is detectable in release builds.
        let lost_chunks = self.chunks - consumed;
        self.obs.lost_chunks.add(lost_chunks);
        (
            PipelineReport {
                parse,
                errors,
                chunks: self.chunks,
                words: self.words,
                lost_chunks,
            },
            sink,
        )
    }
}

struct DecodedChunk {
    seq: u64,
    words: Vec<TraceWord>,
}

fn join_or_propagate<T>(h: JoinHandle<T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn spawn_parse_raw(
    rx: Receiver<TraceChunk>,
    mut parser: TraceParser,
    ev_tx: SyncSender<Vec<RefEvent>>,
    batch_events: usize,
    hooks: ChaosHooks,
    obs: StreamObs,
) -> JoinHandle<ParseOutcome> {
    std::thread::Builder::new()
        .name("wrl-stream-parse".into())
        .spawn(move || {
            let mut out = StreamSink::new(ev_tx, batch_events).gauged(Arc::clone(&obs.q_events));
            let mut consumed = 0u64;
            for chunk in rx {
                obs.q_chunks.add(-1);
                if !hooks.deliver(StageSite::Parse, chunk.seq) {
                    continue;
                }
                consumed += 1;
                obs.parse_words.add(chunk.words.len() as u64);
                for &w in &chunk.words {
                    parser.push_word(w, &mut out);
                }
            }
            parser.finish(&mut out);
            out.flush();
            (
                parser.stats.clone(),
                std::mem::take(&mut parser.errors),
                consumed,
            )
        })
        .expect("spawn stream worker")
}

fn spawn_decoder(
    idx: usize,
    rx: Arc<Mutex<Receiver<TraceChunk>>>,
    tx: SyncSender<DecodedChunk>,
    hooks: ChaosHooks,
    obs: StreamObs,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("wrl-stream-decode{idx}"))
        .spawn(move || loop {
            // Hold the lock only for the receive, not the decode, so
            // two decoders actually overlap.
            let chunk = match rx.lock().expect("decoder rx lock").recv() {
                Ok(c) => c,
                Err(_) => return,
            };
            obs.q_chunks.add(-1);
            if !hooks.deliver(StageSite::Decode, chunk.seq) {
                continue;
            }
            let words = chunk.words.iter().map(|&w| classify(w)).collect();
            if tx
                .send(DecodedChunk {
                    seq: chunk.seq,
                    words,
                })
                .is_err()
            {
                return;
            }
        })
        .expect("spawn stream worker")
}

fn spawn_parse_decoded(
    rx: Receiver<DecodedChunk>,
    mut parser: TraceParser,
    ev_tx: SyncSender<Vec<RefEvent>>,
    batch_events: usize,
    hooks: ChaosHooks,
    obs: StreamObs,
) -> JoinHandle<ParseOutcome> {
    std::thread::Builder::new()
        .name("wrl-stream-parse".into())
        .spawn(move || {
            let mut out = StreamSink::new(ev_tx, batch_events).gauged(Arc::clone(&obs.q_events));
            // With two decoders, chunks can arrive out of order;
            // reorder by sequence number so the parser sees exact
            // stream order. The map holds at most (decoders × depth)
            // chunks, so this adds no unbounded buffering — unless a
            // chunk was dropped upstream, in which case everything
            // after the gap is held until the stream closes and then
            // counted as lost (never parsed out of order).
            let mut next = 0u64;
            let mut consumed = 0u64;
            let mut held: BTreeMap<u64, Vec<TraceWord>> = BTreeMap::new();
            for chunk in rx {
                held.insert(chunk.seq, chunk.words);
                while let Some(words) = held.remove(&next) {
                    next += 1;
                    if !hooks.deliver(StageSite::Parse, next - 1) {
                        continue;
                    }
                    consumed += 1;
                    obs.parse_words.add(words.len() as u64);
                    for &w in &words {
                        parser.push_classified(w, &mut out);
                    }
                }
            }
            parser.finish(&mut out);
            out.flush();
            (
                parser.stats.clone(),
                std::mem::take(&mut parser.errors),
                consumed,
            )
        })
        .expect("spawn stream worker")
}

fn spawn_sink<S: TraceSink + Send + 'static>(
    rx: Receiver<Vec<RefEvent>>,
    mut sink: S,
    obs: StreamObs,
) -> JoinHandle<S> {
    std::thread::Builder::new()
        .name("wrl-stream-sink".into())
        .spawn(move || {
            for batch in rx {
                obs.q_events.add(-1);
                obs.sink_batches.inc();
                obs.sink_events.add(batch.len() as u64);
                for ev in batch {
                    ev.apply(&mut sink);
                }
            }
            sink
        })
        .expect("spawn stream worker")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
    use crate::format::{ctl, CtlOp};
    use crate::parser::CollectSink;
    use std::sync::Arc;

    const USER_BB: u32 = 0x0040_0000;
    const KERNEL_BB: u32 = 0x8001_0000;

    fn table() -> Arc<BbTable> {
        let mut t = BbTable::new();
        t.insert(
            USER_BB,
            BbInfo {
                orig_vaddr: 0x0040_1000,
                n_insts: 3,
                ops: vec![MemOp {
                    index: 1,
                    store: false,
                    width: Width::Word,
                }],
                flags: BbTraceFlags::default(),
            },
        );
        t.insert(
            KERNEL_BB,
            BbInfo {
                orig_vaddr: 0x8002_0000,
                n_insts: 2,
                ops: vec![MemOp {
                    index: 0,
                    store: true,
                    width: Width::Word,
                }],
                flags: BbTraceFlags::default(),
            },
        );
        Arc::new(t)
    }

    /// A trace exercising blocks, memory words, kernel entry/exit and
    /// a context switch, long enough to span many small chunks.
    fn words() -> Vec<u32> {
        let mut w = Vec::new();
        for i in 0..200u32 {
            w.push(USER_BB); // user block with one load
            w.push(0x7000_0000 + i * 8); // its memory address
            if i % 7 == 0 {
                w.push(ctl(CtlOp::KEnter, 0));
                w.push(KERNEL_BB); // kernel block with one store
                w.push(0x8030_0000 + i * 4);
                w.push(ctl(CtlOp::KExit, 0));
            }
            if i == 100 {
                w.push(ctl(CtlOp::CtxSwitch, 5));
            }
        }
        w
    }

    fn fresh_parser() -> TraceParser {
        let mut p = TraceParser::new(table());
        p.set_user_table(0, table());
        p.set_user_table(5, table());
        p
    }

    fn batch_reference() -> (ParseStats, CollectSink) {
        let mut p = fresh_parser();
        let mut sink = CollectSink::default();
        p.parse_all(&words(), &mut sink);
        (p.stats.clone(), sink)
    }

    #[test]
    fn matches_batch_for_all_shapes() {
        let (ref_stats, ref_sink) = batch_reference();
        let w = words();
        for workers in 1..=4 {
            for chunk_words in [1usize, 3, 64, 4096] {
                for feed_len in [1usize, 17, w.len()] {
                    let pl = Pipeline::new(
                        fresh_parser(),
                        CollectSink::default(),
                        PipelineCfg {
                            chunk_words,
                            workers,
                            depth: 2,
                            batch_events: 32,
                        },
                    );
                    let mut pl = pl;
                    for piece in w.chunks(feed_len) {
                        pl.feed(piece);
                    }
                    let (report, sink) = pl.finish();
                    assert_eq!(
                        report.parse, ref_stats,
                        "workers={workers} chunk={chunk_words}"
                    );
                    assert_eq!(
                        sink.irefs, ref_sink.irefs,
                        "workers={workers} chunk={chunk_words}"
                    );
                    assert_eq!(sink.drefs, ref_sink.drefs);
                    assert_eq!(sink.switches, ref_sink.switches);
                    assert_eq!(report.words, w.len() as u64);
                    let expect_chunks = w.len().div_ceil(chunk_words) as u64;
                    assert_eq!(report.chunks, expect_chunks);
                }
            }
        }
    }

    #[test]
    fn empty_stream_finishes_clean() {
        for workers in 1..=4 {
            let pl = Pipeline::new(
                fresh_parser(),
                CollectSink::default(),
                PipelineCfg {
                    workers,
                    ..PipelineCfg::default()
                },
            );
            let (report, sink) = pl.finish();
            assert_eq!(report.parse, ParseStats::default());
            assert_eq!(report.chunks, 0);
            assert!(sink.irefs.is_empty());
        }
    }

    #[test]
    fn stream_sink_batches_preserve_order() {
        let (tx, rx) = sync_channel(64);
        let mut s = StreamSink::new(tx, 3);
        for i in 0..10u32 {
            s.iref(i, Space::Kernel, false);
        }
        s.flush();
        drop(s);
        let mut replay = CollectSink::default();
        for batch in rx {
            assert!(batch.len() <= 3);
            for ev in batch {
                ev.apply(&mut replay);
            }
        }
        let got: Vec<u32> = replay.irefs.iter().map(|&(v, _, _)| v).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn event_vec_replay_matches_direct_parse() {
        // Parsing into an EventVec and replaying must equal parsing
        // straight into the sink — the metered harness depends on it.
        let mut direct = CollectSink::default();
        let mut p = fresh_parser();
        p.parse_all(&words(), &mut direct);

        let mut buf = EventVec::default();
        let mut p2 = fresh_parser();
        p2.parse_all(&words(), &mut buf);
        let mut replayed = CollectSink::default();
        for ev in buf.0 {
            ev.apply(&mut replayed);
        }
        assert_eq!(replayed.irefs, direct.irefs);
        assert_eq!(replayed.drefs, direct.drefs);
        assert_eq!(replayed.switches, direct.switches);
    }

    #[test]
    fn stalls_degrade_throughput_never_results() {
        // A stall at every stage boundary must be invisible in the
        // results: same stats, same event stream, nothing lost.
        let (ref_stats, ref_sink) = batch_reference();
        let w = words();
        for workers in 1..=4 {
            let hooks = ChaosHooks::on_chunk(|_, seq| {
                if seq % 3 == 0 {
                    ChunkFate::Stall(Duration::from_micros(200))
                } else {
                    ChunkFate::Deliver
                }
            });
            let mut pl = Pipeline::with_hooks(
                fresh_parser(),
                CollectSink::default(),
                PipelineCfg {
                    chunk_words: 16,
                    workers,
                    depth: 2,
                    batch_events: 32,
                },
                hooks,
            );
            pl.feed(&w);
            let (report, sink) = pl.finish();
            assert_eq!(report.parse, ref_stats, "workers={workers}");
            assert_eq!(report.lost_chunks, 0, "workers={workers}");
            assert_eq!(sink.irefs, ref_sink.irefs, "workers={workers}");
            assert_eq!(sink.drefs, ref_sink.drefs, "workers={workers}");
        }
    }

    #[test]
    fn dropped_chunk_is_counted_lost_in_every_topology() {
        let w = words();
        for workers in 1..=4 {
            let hooks = ChaosHooks::on_chunk(|site, seq| {
                if site == StageSite::Parse && seq == 1 {
                    ChunkFate::Drop
                } else {
                    ChunkFate::Deliver
                }
            });
            let mut pl = Pipeline::with_hooks(
                fresh_parser(),
                CollectSink::default(),
                PipelineCfg {
                    chunk_words: 16,
                    workers,
                    depth: 2,
                    batch_events: 32,
                },
                hooks,
            );
            pl.feed(&w);
            let (report, _) = pl.finish();
            assert_eq!(report.lost_chunks, 1, "workers={workers}");
        }
    }

    #[test]
    fn decode_stage_drop_surfaces_as_lost_chunks() {
        // Dropping inside the decode stage opens a sequence gap; the
        // reordering parse stage must never leap it — the gap and
        // everything stranded behind it count as lost.
        let w = words();
        for workers in [3usize, 4] {
            let hooks = ChaosHooks::on_chunk(|site, seq| {
                if site == StageSite::Decode && seq == 2 {
                    ChunkFate::Drop
                } else {
                    ChunkFate::Deliver
                }
            });
            let mut pl = Pipeline::with_hooks(
                fresh_parser(),
                CollectSink::default(),
                PipelineCfg {
                    chunk_words: 64,
                    workers,
                    depth: 2,
                    batch_events: 32,
                },
                hooks,
            );
            pl.feed(&w);
            let (report, _) = pl.finish();
            assert!(
                report.lost_chunks >= 1,
                "workers={workers}: gap must be detected, lost={}",
                report.lost_chunks
            );
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        // An unknown block id must surface in the report's errors,
        // not vanish into a worker thread.
        let pl = Pipeline::new(
            fresh_parser(),
            CollectSink::default(),
            PipelineCfg::default(),
        );
        let mut pl = pl;
        // 0x0050_0000: a user address with no table entry.
        pl.feed(&[USER_BB, 0x7000_0000, 0x0050_0000]);
        let (report, _) = pl.finish();
        assert_eq!(report.parse.errors, 1);
        assert_eq!(report.errors.len(), 1);
    }
}
