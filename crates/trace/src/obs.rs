//! Observability for the trace path: defensive-check error tallies
//! (recorded live as the parser detects them) and end-of-run exports
//! of the aggregate [`ParseStats`].
//!
//! The split matters: §4.3's redundancy checks are *rare-path* events
//! worth counting the moment they fire (a healthy system records all
//! zeros), while the aggregate parse statistics are already counted
//! exactly by [`ParseStats`] and are exported once per run instead of
//! double-counting every hot-path word.

use std::sync::Arc;

use wrl_obs::{counter, gauge, global, Counter, Gauge};

use crate::parser::{ParseError, ParseStats};

/// Live counters for every [`ParseError`] variant. Register once and
/// attach to a parser with [`crate::TraceParser::attach_obs`]; the
/// parser bumps the matching counter on each detected error (a cold
/// path — errors mean a corrupted trace).
#[derive(Clone)]
pub struct ParserObs {
    unknown_bb: Arc<Counter>,
    wrong_space: Arc<Counter>,
    bad_control: Arc<Counter>,
    truncated: Arc<Counter>,
    unbalanced_kexit: Arc<Counter>,
    no_table_for_asid: Arc<Counter>,
}

impl ParserObs {
    /// Registers the error-tally counters in the global registry.
    pub fn register() -> ParserObs {
        let r = global();
        ParserObs {
            unknown_bb: counter!(
                r,
                "trace.parse.error.unknown_bb",
                "errors",
                "§4.3",
                "Addresses consumed as block ids with no table entry."
            ),
            wrong_space: counter!(
                r,
                "trace.parse.error.wrong_space",
                "errors",
                "§4.3",
                "Kernel-range block ids seen in a user context."
            ),
            bad_control: counter!(
                r,
                "trace.parse.error.bad_control",
                "errors",
                "§4.3",
                "Control-range words with no known opcode."
            ),
            truncated: counter!(
                r,
                "trace.parse.error.truncated",
                "errors",
                "§4.3",
                "Blocks still owed memory words at end of stream."
            ),
            unbalanced_kexit: counter!(
                r,
                "trace.parse.error.unbalanced_kexit",
                "errors",
                "§4.3",
                "KExit control words with no matching KEnter."
            ),
            no_table_for_asid: counter!(
                r,
                "trace.parse.error.no_table_for_asid",
                "errors",
                "§4.3",
                "Context switches to an ASID with no registered table."
            ),
        }
    }

    /// Bumps the counter matching one detected error.
    pub(crate) fn tally(&self, e: &ParseError) {
        match e {
            ParseError::UnknownBb { .. } => self.unknown_bb.inc(),
            ParseError::WrongSpace { .. } => self.wrong_space.inc(),
            ParseError::BadControl { .. } => self.bad_control.inc(),
            ParseError::Truncated { .. } => self.truncated.inc(),
            ParseError::UnbalancedKExit { .. } => self.unbalanced_kexit.inc(),
            ParseError::NoTableForAsid { .. } => self.no_table_for_asid.inc(),
        }
    }
}

/// Gauges mirroring [`ParseStats`], set once per run by
/// [`ParseStats::export_obs`].
pub struct ParseStatsObs {
    words: Arc<Gauge>,
    bb_records: Arc<Gauge>,
    mem_records: Arc<Gauge>,
    mode_transitions: Arc<Gauge>,
    kernel_entries: Arc<Gauge>,
    ctx_switches: Arc<Gauge>,
    errors: Arc<Gauge>,
}

impl ParseStatsObs {
    /// Registers the parse-statistics gauges in the global registry.
    pub fn register() -> ParseStatsObs {
        let r = global();
        ParseStatsObs {
            words: gauge!(
                r,
                "trace.parse.words",
                "words",
                "§3.3",
                "Raw trace words consumed by the last parse."
            ),
            bb_records: gauge!(
                r,
                "trace.parse.bb_records",
                "records",
                "§3.3",
                "Basic-block records in the last parse."
            ),
            mem_records: gauge!(
                r,
                "trace.parse.mem_records",
                "records",
                "§3.3",
                "Memory-reference records in the last parse."
            ),
            mode_transitions: gauge!(
                r,
                "trace.parse.mode_transitions",
                "events",
                "§4.3",
                "Generation→analysis transitions (trace 'dirt' events)."
            ),
            kernel_entries: gauge!(
                r,
                "trace.parse.kernel_entries",
                "events",
                "§3.3",
                "Kernel entries observed in the last parse."
            ),
            ctx_switches: gauge!(
                r,
                "trace.parse.ctx_switches",
                "events",
                "§3.3",
                "Context switches observed in the last parse."
            ),
            errors: gauge!(
                r,
                "trace.parse.errors",
                "errors",
                "§4.3",
                "Total defensive-check errors in the last parse."
            ),
        }
    }

    /// Sets every gauge from one run's statistics.
    pub fn export(&self, s: &ParseStats) {
        self.words.set(s.words as i64);
        self.bb_records.set(s.bb_records as i64);
        self.mem_records.set(s.mem_records as i64);
        self.mode_transitions.set(s.mode_transitions as i64);
        self.kernel_entries.set(s.kernel_entries as i64);
        self.ctx_switches.set(s.ctx_switches as i64);
        self.errors.set(s.errors as i64);
    }
}

impl ParseStats {
    /// Registers (idempotently) and sets the `trace.parse.*` gauges
    /// from this run's statistics.
    pub fn export_obs(&self) {
        ParseStatsObs::register().export(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbinfo::BbTable;
    use crate::parser::{CollectSink, TraceParser};
    use std::sync::Arc as StdArc;

    #[test]
    fn attached_parser_tallies_errors_live() {
        let obs = ParserObs::register();
        let before = obs.unknown_bb.get();
        let mut p = TraceParser::new(StdArc::new(BbTable::new()));
        p.set_user_table(0, StdArc::new(BbTable::new()));
        p.attach_obs(obs.clone());
        let mut sink = CollectSink::default();
        // An unknown user block id and a kernel address in user context.
        p.parse_all(&[0x0066_0000, 0x8003_0000], &mut sink);
        assert_eq!(p.stats.errors, 2);
        if wrl_obs::recording() {
            assert_eq!(obs.unknown_bb.get(), before + 1);
        }
    }

    #[test]
    fn parse_stats_export_sets_gauges() {
        let s = ParseStats {
            words: 42,
            errors: 3,
            ..ParseStats::default()
        };
        s.export_obs();
        let snap = wrl_obs::global().snapshot();
        let words = snap
            .metrics
            .iter()
            .find(|m| m.desc.name == "trace.parse.words")
            .expect("registered");
        if wrl_obs::recording() {
            match words.value {
                wrl_obs::ValueSnap::Gauge { value, .. } => assert_eq!(value, 42),
                _ => panic!("gauge expected"),
            }
        }
    }
}
