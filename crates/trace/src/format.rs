//! The trace-word format.
//!
//! "A trace entry for a basic block or memory reference is a single
//! machine word. This means that a single machine instruction records
//! a complete trace entry. In this way, trace entries remain
//! contiguous, with no locks or other protection mechanisms required."
//! (§3.3.)
//!
//! A basic-block entry is the return address stored by `jal bbtrace`
//! (an instrumented-text address); a memory entry is the effective
//! virtual address computed by `memtrace`. Both are plain addresses —
//! the parser tells them apart purely positionally, using the static
//! basic-block table. Control entries use values below
//! [`CTL_LIMIT`]: page zero is never mapped in any address space, so
//! no legitimate basic-block id or data address can collide with them.

/// Exclusive upper bound of the control-word range.
pub const CTL_LIMIT: u32 = 0x1_0000;

/// Control-word opcodes (low byte of a control word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum CtlOp {
    /// Subsequent user-context entries belong to the address space in
    /// the payload (written when the kernel copies a per-process
    /// buffer, preserving interleaving).
    CtxSwitch = 1,
    /// The kernel was entered (exception/interrupt); payload is the
    /// cause code. Pushes a kernel trace context.
    KEnter = 2,
    /// The kernel returned to the interrupted activity. Pops the
    /// kernel trace context.
    KExit = 3,
    /// Trace generation resumed (end of a trace-analysis phase).
    TraceOn = 4,
    /// Trace generation suspended (start of a trace-analysis phase).
    /// Each Off/On pair is one "dirt" transition of §4.3.
    TraceOff = 5,
    /// End of trace.
    Eof = 6,
}

/// A decoded control word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ctl {
    /// The operation.
    pub op: CtlOp,
    /// The 8-bit payload (ASID for CtxSwitch, cause for KEnter).
    pub payload: u8,
}

/// Encodes a control word.
pub const fn ctl(op: CtlOp, payload: u8) -> u32 {
    ((payload as u32) << 8) | (op as u32)
}

/// Classifies a raw trace word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceWord {
    /// A control word.
    Ctl(Ctl),
    /// An address word (basic-block id or memory reference — the
    /// distinction is positional).
    Addr(u32),
    /// A value in the control range that decodes to no known opcode —
    /// a defensive-tracing error signal.
    BadCtl(u32),
}

/// Decodes a raw trace word.
pub fn classify(w: u32) -> TraceWord {
    if w >= CTL_LIMIT {
        return TraceWord::Addr(w);
    }
    let payload = (w >> 8) as u8;
    let op = match w as u8 {
        1 => CtlOp::CtxSwitch,
        2 => CtlOp::KEnter,
        3 => CtlOp::KExit,
        4 => CtlOp::TraceOn,
        5 => CtlOp::TraceOff,
        6 => CtlOp::Eof,
        _ => return TraceWord::BadCtl(w),
    };
    TraceWord::Ctl(Ctl { op, payload })
}

/// True if an address lies in the kernel's half of the address space.
#[inline]
pub fn is_kernel_addr(a: u32) -> bool {
    a >= 0x8000_0000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_round_trips_controls() {
        for (op, pay) in [
            (CtlOp::CtxSwitch, 7u8),
            (CtlOp::KEnter, 0),
            (CtlOp::KExit, 0),
            (CtlOp::TraceOn, 0),
            (CtlOp::TraceOff, 0),
            (CtlOp::Eof, 0),
        ] {
            match classify(ctl(op, pay)) {
                TraceWord::Ctl(c) => {
                    assert_eq!(c.op, op);
                    assert_eq!(c.payload, pay);
                }
                other => panic!("expected control, got {other:?}"),
            }
        }
    }

    #[test]
    fn addresses_pass_through() {
        assert_eq!(classify(0x0040_0000), TraceWord::Addr(0x0040_0000));
        assert_eq!(classify(0x8003_0124), TraceWord::Addr(0x8003_0124));
        assert_eq!(classify(CTL_LIMIT), TraceWord::Addr(CTL_LIMIT));
    }

    #[test]
    fn junk_in_control_range_is_flagged() {
        assert!(matches!(classify(0x0000_00ff), TraceWord::BadCtl(_)));
        assert!(matches!(classify(0x0000_9900), TraceWord::BadCtl(_)));
    }

    #[test]
    fn kernel_addr_split() {
        assert!(is_kernel_addr(0x8000_0000));
        assert!(!is_kernel_addr(0x7fff_fffc));
    }
}
