//! Trace archives: saving and loading system traces with their
//! static tables.
//!
//! The Tunix system "produced a collection of single and multi-task
//! user-level traces on tape, which were made available to the
//! community for use in memory system research" (§3.4). A trace is
//! only usable together with the static basic-block tables that
//! decode it, so the archive format bundles the kernel table, the
//! per-ASID user tables, and the raw trace words.
//!
//! The format is a simple little-endian binary container:
//!
//! ```text
//! "W3KTRACE" magic, u32 version
//! kernel table | u32 n_user { u8 asid, table }* | u64 n_words, words
//! table := u32 n_blocks { u32 id, u32 orig, u16 n_insts, u8 flags,
//!                         u16 n_ops { u16 index, u8 store, u8 width }* }*
//! ```

use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
use crate::parser::TraceParser;
use wrl_isa::Width;

/// Magic bytes of the archive format.
pub const MAGIC: &[u8; 8] = b"W3KTRACE";
/// Current format version.
pub const VERSION: u32 = 1;

/// A bundled system trace.
#[derive(Clone, Debug, Default)]
pub struct TraceArchive {
    /// The kernel's basic-block table.
    pub kernel_table: BbTable,
    /// Per-ASID user tables.
    pub user_tables: Vec<(u8, BbTable)>,
    /// The raw trace words.
    pub words: Vec<u32>,
}

/// Errors while reading an archive.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a trace archive, or corrupted framing.
    Malformed(&'static str),
    /// The file *is* a trace archive, but in a format version this
    /// decoder does not speak — distinguish "your tooling is too old
    /// (or too new)" from actual corruption. Version-2 archives (the
    /// compressed block format) are decoded by `wrl-store`, not here.
    UnsupportedVersion(u32),
}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

impl core::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "i/o: {e}"),
            ArchiveError::Malformed(what) => write!(f, "malformed archive: {what}"),
            ArchiveError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported archive version {v} (is your tooling current?)"
                )
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArchiveError> {
        if self.at + n > self.buf.len() {
            return Err(ArchiveError::Malformed("truncated"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ArchiveError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_table(out: &mut Vec<u8>, t: &BbTable) {
    // Deterministic order for reproducible archives.
    let mut entries: Vec<(&u32, &BbInfo)> = t.iter().collect();
    entries.sort_by_key(|(id, _)| **id);
    put_u32(out, entries.len() as u32);
    for (id, info) in entries {
        put_u32(out, *id);
        put_u32(out, info.orig_vaddr);
        put_u16(out, info.n_insts);
        let flags = u8::from(info.flags.idle_start)
            | (u8::from(info.flags.idle_stop) << 1)
            | (u8::from(info.flags.hand_traced) << 2);
        out.push(flags);
        put_u16(out, info.ops.len() as u16);
        for op in &info.ops {
            put_u16(out, op.index);
            out.push(u8::from(op.store));
            out.push(match op.width {
                Width::Byte => 1,
                Width::Half => 2,
                Width::Word => 4,
            });
        }
    }
}

/// Encodes the full table section — kernel table followed by the
/// per-ASID user tables — in the exact byte layout both archive
/// versions share. Public so the `wrl-store` v2 container can embed
/// an identical table section without duplicating the codec.
pub fn encode_table_section(out: &mut Vec<u8>, kernel: &BbTable, users: &[(u8, BbTable)]) {
    encode_table(out, kernel);
    put_u32(out, users.len() as u32);
    for (asid, t) in users {
        out.push(*asid);
        encode_table(out, t);
    }
}

/// A decoded table section: the kernel table, the per-ASID user
/// tables, and the number of bytes the section occupied.
pub type TableSection = (BbTable, Vec<(u8, BbTable)>, usize);

/// Decodes a table section produced by [`encode_table_section`],
/// returning the tables and the number of bytes consumed.
pub fn decode_table_section(buf: &[u8]) -> Result<TableSection, ArchiveError> {
    let mut c = Cursor { buf, at: 0 };
    let kernel = decode_table(&mut c)?;
    let n_users = c.u32()? as usize;
    if n_users > 64 {
        return Err(ArchiveError::Malformed("too many user tables"));
    }
    let mut users = Vec::with_capacity(n_users);
    for _ in 0..n_users {
        let asid = c.u8()?;
        users.push((asid, decode_table(&mut c)?));
    }
    Ok((kernel, users, c.at))
}

fn decode_table(c: &mut Cursor) -> Result<BbTable, ArchiveError> {
    let n = c.u32()? as usize;
    let mut t = BbTable::new();
    for _ in 0..n {
        let id = c.u32()?;
        let orig_vaddr = c.u32()?;
        let n_insts = c.u16()?;
        let flags = c.u8()?;
        let n_ops = c.u16()? as usize;
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let index = c.u16()?;
            let store = c.u8()? != 0;
            let width = match c.u8()? {
                1 => Width::Byte,
                2 => Width::Half,
                4 => Width::Word,
                _ => return Err(ArchiveError::Malformed("bad width")),
            };
            ops.push(MemOp {
                index,
                store,
                width,
            });
        }
        t.insert(
            id,
            BbInfo {
                orig_vaddr,
                n_insts,
                ops,
                flags: BbTraceFlags {
                    idle_start: flags & 1 != 0,
                    idle_stop: flags & 2 != 0,
                    hand_traced: flags & 4 != 0,
                },
            },
        );
    }
    Ok(t)
}

impl TraceArchive {
    /// Encodes the archive to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4 + 4096);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        encode_table_section(&mut out, &self.kernel_table, &self.user_tables);
        put_u64(&mut out, self.words.len() as u64);
        for w in &self.words {
            put_u32(&mut out, *w);
        }
        out
    }

    /// Decodes an archive from bytes.
    pub fn decode(buf: &[u8]) -> Result<TraceArchive, ArchiveError> {
        let mut c = Cursor { buf, at: 0 };
        if c.take(8)? != MAGIC {
            return Err(ArchiveError::Malformed("bad magic"));
        }
        let v = c.u32()?;
        if v != VERSION {
            return Err(ArchiveError::UnsupportedVersion(v));
        }
        let (kernel_table, user_tables, used) = decode_table_section(&buf[c.at..])?;
        c.at += used;
        let n_words = c.u64()? as usize;
        // Each word occupies four bytes, so the remaining input bounds
        // the preallocation regardless of the (untrusted) count.
        let remaining_words = buf.len().saturating_sub(c.at) / 4;
        let mut words = Vec::with_capacity(n_words.min(remaining_words));
        for _ in 0..n_words {
            words.push(c.u32()?);
        }
        Ok(TraceArchive {
            kernel_table,
            user_tables,
            words,
        })
    }

    /// Writes the archive to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads an archive from a stream.
    pub fn read_from(r: &mut impl Read) -> Result<TraceArchive, ArchiveError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        TraceArchive::decode(&buf)
    }

    /// Saves to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<TraceArchive, ArchiveError> {
        TraceArchive::decode(&std::fs::read(path)?)
    }

    /// Builds a parser wired with this archive's tables.
    pub fn parser(&self) -> TraceParser {
        let mut p = TraceParser::new(Arc::new(self.kernel_table.clone()));
        for (asid, t) in &self.user_tables {
            p.set_user_table(*asid, Arc::new(t.clone()));
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ctl, CtlOp};
    use crate::parser::CollectSink;

    fn sample() -> TraceArchive {
        let mut kt = BbTable::new();
        kt.insert(
            0x8003_0100,
            BbInfo {
                orig_vaddr: 0x8003_0000,
                n_insts: 4,
                ops: vec![MemOp {
                    index: 2,
                    store: true,
                    width: Width::Half,
                }],
                flags: BbTraceFlags {
                    idle_start: true,
                    idle_stop: false,
                    hand_traced: false,
                },
            },
        );
        let mut ut = BbTable::new();
        ut.insert(
            0x0050_0000,
            BbInfo {
                orig_vaddr: 0x0040_0000,
                n_insts: 2,
                ops: vec![MemOp {
                    index: 0,
                    store: false,
                    width: Width::Word,
                }],
                flags: BbTraceFlags::default(),
            },
        );
        TraceArchive {
            kernel_table: kt,
            user_tables: vec![(3, ut)],
            words: vec![
                ctl(CtlOp::CtxSwitch, 3),
                0x0050_0000,
                0x0100_0000,
                ctl(CtlOp::KEnter, 0),
                0x8003_0100,
                0x8030_0004,
                ctl(CtlOp::KExit, 0),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let a = sample();
        let bytes = a.encode();
        let b = TraceArchive::decode(&bytes).unwrap();
        assert_eq!(b.words, a.words);
        assert_eq!(b.user_tables.len(), 1);
        assert_eq!(b.user_tables[0].0, 3);
        let info = b.kernel_table.get(0x8003_0100).unwrap();
        assert_eq!(info.n_insts, 4);
        assert!(info.flags.idle_start);
        assert_eq!(info.ops[0].width, Width::Half);
        assert!(info.ops[0].store);
    }

    #[test]
    fn loaded_archive_parses_like_the_original() {
        let a = sample();
        let b = TraceArchive::decode(&a.encode()).unwrap();
        let mut p = b.parser();
        let mut sink = CollectSink::default();
        p.parse_all(&b.words, &mut sink);
        assert_eq!(p.stats.errors, 0, "{:?}", p.errors);
        assert_eq!(sink.irefs.len(), 6);
        assert_eq!(sink.drefs.len(), 2);
        // 4 kernel idle insts + the user block's trailing iref, which
        // is flushed lazily after the idle flag was raised.
        assert_eq!(p.stats.idle_insts, 5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(TraceArchive::decode(b"not a trace").is_err());
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 3);
        assert!(TraceArchive::decode(&bytes).is_err());
        // Wrong version.
        let mut bytes = sample().encode();
        bytes[8] = 99;
        assert!(matches!(
            TraceArchive::decode(&bytes),
            Err(ArchiveError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn v2_archive_is_unsupported_not_malformed() {
        // A version-2 (compressed) archive read by the v1 decoder must
        // report "your tooling is old", not "corrupt file".
        let mut bytes = sample().encode();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        match TraceArchive::decode(&bytes) {
            Err(ArchiveError::UnsupportedVersion(2)) => {}
            other => panic!("expected UnsupportedVersion(2), got {other:?}"),
        }
    }

    #[test]
    fn table_section_round_trips_standalone() {
        let a = sample();
        let mut buf = Vec::new();
        encode_table_section(&mut buf, &a.kernel_table, &a.user_tables);
        let (kernel, users, used) = decode_table_section(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(kernel.len(), a.kernel_table.len());
        assert_eq!(users.len(), 1);
        assert_eq!(users[0].0, 3);
    }
}
