//! The tracing-system runtime ABI.
//!
//! These constants are shared between three parties that must agree
//! exactly: the epoxie-generated instrumentation code, the
//! bbtrace/memtrace runtime routines, and the kernels' trace-control
//! subsystem. They define which registers are stolen, the layout of
//! the per-context bookkeeping area, and the fixed user-space
//! addresses of the trace pages.

use wrl_isa::reg::{Reg, S5, S6, S7};

/// `xreg1`: the current trace-buffer pointer. Instrumented code
/// stores trace entries through this register and bumps it.
pub const XREG1: Reg = S5;
/// `xreg2`: scratch for the bbtrace/memtrace runtime.
pub const XREG2: Reg = S6;
/// `xreg3`: pointer to the bookkeeping area.
pub const XREG3: Reg = S7;

/// The three stolen registers, in shadow-slot order.
pub const XREGS: [Reg; 3] = [XREG1, XREG2, XREG3];

/// Bookkeeping-area offsets (from `xreg3`).
pub mod bk {
    /// End of the trace buffer (exclusive); bbtrace's fullness check.
    pub const BUF_END: i16 = 0;
    /// Scratch slot used by memtrace.
    pub const SCRATCH: i16 = 4;
    /// Second scratch slot (return-address of the runtime itself).
    pub const SCRATCH2: i16 = 8;
    /// Hard end of the buffer including the slack region (kernel
    /// runtime only): when the soft [`BUF_END`] is exceeded, tracing
    /// continues into the slack until a safe point is reached
    /// ("provisions must be made for critical system operations to
    /// complete before tracing is suspended", §3.3).
    pub const HARD_END: i16 = 12;
    /// Flag set by the kernel runtime when the buffer needs analysis.
    pub const NEED_FLUSH: i16 = 16;
    /// Saved `ra` of the current basic block — the paper's
    /// `sw ra,124(xreg3)` slot (Figure 2).
    pub const RA_SAVE: i16 = 124;
    /// Shadow slot for the original program's `xreg1` value.
    pub const XREG1_SHADOW: i16 = 128;
    /// Shadow slot for the original program's `xreg2` value.
    pub const XREG2_SHADOW: i16 = 132;
    /// Shadow slot for the original program's `xreg3` value.
    pub const XREG3_SHADOW: i16 = 136;
    /// Size of the bookkeeping area in bytes.
    pub const SIZE: u32 = 160;

    /// Shadow slot for stolen register `i` (0..3).
    pub const fn xreg_shadow(i: usize) -> i16 {
        XREG1_SHADOW + (i as i16) * 4
    }
}

/// Fixed user-space virtual addresses of the tracing area.
///
/// Kept below 32 MB so bare (kernel-less) runs can identity-map them
/// into default-sized physical memory; under the kernels these pages
/// are mapped per-process (per-thread under Mach, §3.6).
pub mod user {
    /// The per-process (or per-thread, under Mach) bookkeeping page.
    pub const BOOKKEEPING: u32 = 0x01e0_0000;
    /// First trace-buffer page.
    pub const TRACE_BUF: u32 = 0x01e0_1000;
    /// Default per-process trace buffer size in bytes.
    pub const TRACE_BUF_BYTES: u32 = 16 * 4096;
}

/// Syscall-instruction code fields (the `code` operand of `syscall`).
pub mod trapcode {
    /// Ordinary ABI system call (number in `v0`).
    pub const SYSCALL_ABI: u32 = 0;
    /// Trace-buffer-full trap from bbtrace.
    pub const TRACE_FLUSH: u32 = 1;
}

/// System-call numbers of the W3K Unix ABI (in `v0`; arguments in
/// `a0..a2`, result in `v0`). Shared by the kernels, the workloads
/// and the bare-machine host emulation.
pub mod sys {
    /// `exit(code)` — never returns.
    pub const EXIT: u32 = 1;
    /// `open(path) -> fd` (read/write; -1 on failure).
    pub const OPEN: u32 = 2;
    /// `read(fd, buf, len) -> n`.
    pub const READ: u32 = 3;
    /// `write(fd, buf, len) -> n` (fd 1 is the console).
    pub const WRITE: u32 = 4;
    /// `close(fd)`.
    pub const CLOSE: u32 = 5;
    /// `sbrk(n) -> old_brk`.
    pub const SBRK: u32 = 6;
    /// `getpid() -> pid`.
    pub const GETPID: u32 = 7;
    /// `trace_ctl(cmd, arg) -> v` — the kernel call the paper added
    /// "to provide a mechanism for user-level analysis programs to
    /// control tracing" (§3.1).
    pub const TRACE_CTL: u32 = 8;
    /// `creat(path) -> fd` (truncate/create for writing).
    pub const CREAT: u32 = 9;
    /// `yield()` — give up the CPU (client-server workloads).
    pub const YIELD: u32 = 10;
    /// Mach: server receive — blocks until an IPC request arrives,
    /// returning the operation code.
    pub const RECV: u32 = 11;
    /// Mach: server reply to the pending client; `a0` is the result.
    pub const REPLY: u32 = 12;
    /// Mach: raw block read into a page-aligned server buffer.
    pub const BREAD: u32 = 13;
    /// Mach: raw block write from a page-aligned server buffer.
    pub const BWRITE: u32 = 14;
    /// `spawn(entry, stack_top, arg) -> token` — create a thread in
    /// the caller's address space with its own trace pages (§3.6).
    pub const SPAWN: u32 = 15;
}

/// `trace_ctl` command codes.
pub mod trace_ctl {
    /// Start tracing (argument: in-kernel buffer budget in words).
    pub const START: u32 = 1;
    /// Stop tracing.
    pub const STOP: u32 = 2;
    /// Resume trace generation after an analysis phase.
    pub const RESUME: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_slots_are_consecutive() {
        assert_eq!(bk::xreg_shadow(0), bk::XREG1_SHADOW);
        assert_eq!(bk::xreg_shadow(1), bk::XREG2_SHADOW);
        assert_eq!(bk::xreg_shadow(2), bk::XREG3_SHADOW);
        assert!(bk::XREG3_SHADOW as u32 + 4 <= bk::SIZE);
    }

    #[test]
    fn ra_slot_matches_paper() {
        assert_eq!(bk::RA_SAVE, 124);
    }
}
