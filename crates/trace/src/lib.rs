//! The trace format, static tables, runtime ABI and parsing library.
//!
//! Everything the WRL tracing systems' *trace path* needs, shared by
//! the instrumentation tool (which emits the static basic-block
//! tables), the kernels (which write control words and copy
//! per-process buffers) and the analysis programs (which parse the
//! in-kernel buffer back into an interleaved reference stream):
//!
//! * [`mod@format`] — the one-word-per-entry trace format of §3.3;
//! * [`bbinfo`] — the static basic-block lookup tables of §3.5;
//! * [`layout`] — the stolen-register and bookkeeping-area ABI that
//!   epoxie-generated code and the kernels must agree on;
//! * [`parser`] — the trace-parsing library, including the nested
//!   interrupt handling of §3.3 and the defensive redundancy checks
//!   of §4.3;
//! * [`archive`] — a bundle format for distributing traces together
//!   with their decoding tables (the paper's traces went to the
//!   community on tape, §3.4);
//! * [`obs`] — `wrl-obs` wiring: live §4.3 error tallies and
//!   end-of-run parse-statistics exports (see `docs/METRICS.md`).

pub mod archive;
pub mod bbinfo;
pub mod format;
pub mod layout;
pub mod obs;
pub mod parser;
pub mod stream;

pub use archive::{ArchiveError, TraceArchive};
pub use bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
pub use format::{classify, ctl, is_kernel_addr, Ctl, CtlOp, TraceWord, CTL_LIMIT};
pub use obs::{ParseStatsObs, ParserObs};
pub use parser::{CollectSink, ParseError, ParseStats, Space, TraceParser, TraceSink};
pub use stream::{
    ChaosHooks, ChunkFate, EventVec, Pipeline, PipelineCfg, PipelineReport, RefEvent, StageSite,
    StreamSink, TraceChunk,
};
