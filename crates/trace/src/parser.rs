//! The trace-parsing library.
//!
//! Converts the raw word stream extracted from the in-kernel buffer
//! into an interleaved instruction/data reference stream, using the
//! static basic-block tables. Handles the hard cases §3.3 calls out:
//! user activity interrupted mid-block by the kernel, nested kernel
//! interrupts, and context switches — each context's partially-parsed
//! block is suspended and resumed so no references are lost or
//! misattributed. All of §4.3's defensive redundancy checks live
//! here: unknown block ids, block ids in the wrong address space,
//! missing memory words and junk control words are detected and
//! reported rather than silently misparsed.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bbinfo::BbTable;
use crate::format::{classify, is_kernel_addr, CtlOp, TraceWord};
use wrl_isa::Width;

/// Which address space a reference belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// A user process, identified by ASID.
    User(u8),
    /// The kernel.
    Kernel,
}

/// Consumer of the parsed reference stream (typically a memory-system
/// simulator).
pub trait TraceSink {
    /// An instruction fetch at `vaddr` (uninstrumented address).
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool);
    /// A data reference at `vaddr`.
    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space);
    /// The base context switched to the given ASID.
    fn ctx_switch(&mut self, _asid: u8) {}
    /// Trace generation was suspended (`false`) or resumed (`true`).
    fn mode_transition(&mut self, _generating: bool) {}
}

/// Parse-time error, recorded with the word position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// An address appeared where a block id was required, but no table
    /// entry exists.
    UnknownBb {
        /// The offending word.
        word: u32,
        /// Word index in the stream.
        pos: u64,
        /// The context that tried to consume it.
        space: Space,
    },
    /// A kernel-range block id appeared in a user context (violates
    /// the "kernel instruction addresses are in the kernel instruction
    /// address space" sanity check).
    WrongSpace {
        /// The offending word.
        word: u32,
        /// Word index in the stream.
        pos: u64,
    },
    /// A value in the control range with no known opcode.
    BadControl {
        /// The offending word.
        word: u32,
        /// Word index in the stream.
        pos: u64,
    },
    /// The stream ended inside a block's memory words.
    Truncated {
        /// The block whose words are missing.
        bb_id: u32,
        /// Memory words still owed.
        missing: usize,
    },
    /// A `KExit` with no matching `KEnter`.
    UnbalancedKExit {
        /// Word index in the stream.
        pos: u64,
    },
    /// No basic-block table registered for a user ASID.
    NoTableForAsid {
        /// The ASID missing a table.
        asid: u8,
    },
}

/// Aggregate statistics over a parse.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Raw words consumed.
    pub words: u64,
    /// Basic-block records.
    pub bb_records: u64,
    /// Memory-reference records.
    pub mem_records: u64,
    /// Instruction references emitted, user.
    pub user_irefs: u64,
    /// Instruction references emitted, kernel.
    pub kernel_irefs: u64,
    /// Data references emitted, user.
    pub user_drefs: u64,
    /// Data references emitted, kernel.
    pub kernel_drefs: u64,
    /// Instructions executed inside idle-marked blocks (§3.5's
    /// idle-loop counter).
    pub idle_insts: u64,
    /// Generation→analysis transitions (the "dirt" events of §4.3).
    pub mode_transitions: u64,
    /// Kernel entries observed.
    pub kernel_entries: u64,
    /// Context switches observed.
    pub ctx_switches: u64,
    /// Total errors detected (first few are kept in detail).
    pub errors: u64,
}

impl ParseStats {
    /// Field-wise accumulation. All fields are exact integer counts,
    /// so merging per-segment stats reproduces a whole-trace parse.
    pub fn merge(&mut self, other: &ParseStats) {
        self.words += other.words;
        self.bb_records += other.bb_records;
        self.mem_records += other.mem_records;
        self.user_irefs += other.user_irefs;
        self.kernel_irefs += other.kernel_irefs;
        self.user_drefs += other.user_drefs;
        self.kernel_drefs += other.kernel_drefs;
        self.idle_insts += other.idle_insts;
        self.mode_transitions += other.mode_transitions;
        self.kernel_entries += other.kernel_entries;
        self.ctx_switches += other.ctx_switches;
        self.errors += other.errors;
    }
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    bb_id: u32,
    /// Instructions already emitted as I-refs.
    emitted: u16,
    /// Memory operations already consumed.
    ops_done: u16,
}

/// The streaming trace parser.
pub struct TraceParser {
    kernel_tab: Arc<BbTable>,
    user_tabs: HashMap<u8, Arc<BbTable>>,
    base_asid: u8,
    /// Kernel nesting frames; each holds that activation's partial bb.
    kstack: Vec<Option<Pending>>,
    /// Suspended partial blocks per user address space.
    user_pend: HashMap<u8, Option<Pending>>,
    idle: bool,
    pos: u64,
    /// Detailed errors (capped at [`TraceParser::MAX_ERRORS`]).
    pub errors: Vec<ParseError>,
    /// Aggregate statistics.
    pub stats: ParseStats,
    missing_tables: std::collections::HashSet<u8>,
    /// Live error tallies (§4.3), bumped as errors are detected.
    obs: Option<crate::obs::ParserObs>,
}

impl TraceParser {
    /// Maximum number of errors kept in detail.
    pub const MAX_ERRORS: usize = 100;

    /// Creates a parser with the kernel's basic-block table.
    pub fn new(kernel_tab: Arc<BbTable>) -> TraceParser {
        TraceParser {
            kernel_tab,
            user_tabs: HashMap::new(),
            base_asid: 0,
            kstack: Vec::new(),
            user_pend: HashMap::new(),
            idle: false,
            pos: 0,
            errors: Vec::new(),
            stats: ParseStats::default(),
            missing_tables: std::collections::HashSet::new(),
            obs: None,
        }
    }

    /// Registers the basic-block table for a user address space.
    pub fn set_user_table(&mut self, asid: u8, tab: Arc<BbTable>) {
        self.user_tabs.insert(asid, tab);
    }

    /// Attaches live error-tally counters: every defensive-check
    /// error detected from now on also bumps its
    /// `trace.parse.error.*` counter (see `docs/METRICS.md`).
    pub fn attach_obs(&mut self, obs: crate::obs::ParserObs) {
        self.obs = Some(obs);
    }

    fn err(&mut self, e: ParseError) {
        self.stats.errors += 1;
        if let Some(obs) = &self.obs {
            obs.tally(&e);
        }
        if self.errors.len() < Self::MAX_ERRORS {
            self.errors.push(e);
        }
    }

    fn cur_space(&self) -> Space {
        if self.kstack.is_empty() {
            Space::User(self.base_asid)
        } else {
            Space::Kernel
        }
    }

    fn table_for(&self, space: Space) -> Option<&Arc<BbTable>> {
        match space {
            Space::Kernel => Some(&self.kernel_tab),
            Space::User(a) => self.user_tabs.get(&a),
        }
    }

    fn pending_mut(&mut self) -> &mut Option<Pending> {
        if let Some(top) = self.kstack.last_mut() {
            top
        } else {
            self.user_pend.entry(self.base_asid).or_insert(None)
        }
    }

    /// Emits I-refs for instructions `[p.emitted, upto)` of `p`'s bb.
    fn emit_irefs(&mut self, p: &mut Pending, upto: u16, space: Space, sink: &mut dyn TraceSink) {
        let tab = match self.table_for(space) {
            Some(t) => t.clone(),
            None => return,
        };
        let Some(info) = tab.get(p.bb_id) else {
            return;
        };
        for i in p.emitted..upto.min(info.n_insts) {
            let va = info.orig_vaddr + (i as u32) * 4;
            sink.iref(va, space, self.idle);
            match space {
                Space::Kernel => self.stats.kernel_irefs += 1,
                Space::User(_) => self.stats.user_irefs += 1,
            }
            if self.idle {
                self.stats.idle_insts += 1;
            }
        }
        p.emitted = p.emitted.max(upto.min(info.n_insts));
    }

    /// Flushes the remainder of a pending block (its trailing
    /// I-refs after the last memory operation).
    fn flush_pending(&mut self, space: Space, sink: &mut dyn TraceSink) {
        let slot = match space {
            Space::Kernel => self.kstack.last_mut().and_then(|s| s.take()),
            Space::User(a) => self.user_pend.get_mut(&a).and_then(|s| s.take()),
        };
        if let Some(mut p) = slot {
            let n = self
                .table_for(space)
                .and_then(|t| t.get(p.bb_id))
                .map(|i| i.n_insts)
                .unwrap_or(0);
            self.emit_irefs(&mut p, n, space, sink);
        }
    }

    /// Consumes one trace word.
    pub fn push_word(&mut self, w: u32, sink: &mut dyn TraceSink) {
        self.push_classified(classify(w), sink);
    }

    /// Consumes one pre-classified trace word. Classification is pure
    /// and per-word, so the streaming pipeline's decode stage can run
    /// it off-thread; the words must still arrive in stream order.
    pub fn push_classified(&mut self, w: TraceWord, sink: &mut dyn TraceSink) {
        let pos = self.pos;
        self.pos += 1;
        self.stats.words += 1;
        match w {
            TraceWord::Ctl(c) => match c.op {
                CtlOp::CtxSwitch => {
                    self.base_asid = c.payload;
                    self.stats.ctx_switches += 1;
                    if !self.user_tabs.contains_key(&c.payload)
                        && self.missing_tables.insert(c.payload)
                    {
                        self.err(ParseError::NoTableForAsid { asid: c.payload });
                    }
                    sink.ctx_switch(c.payload);
                }
                CtlOp::KEnter => {
                    self.kstack.push(None);
                    self.stats.kernel_entries += 1;
                }
                CtlOp::KExit => {
                    if self.kstack.is_empty() {
                        self.err(ParseError::UnbalancedKExit { pos });
                    } else {
                        self.flush_pending(Space::Kernel, sink);
                        self.kstack.pop();
                    }
                }
                CtlOp::TraceOn => {
                    sink.mode_transition(true);
                }
                CtlOp::TraceOff => {
                    self.stats.mode_transitions += 1;
                    sink.mode_transition(false);
                }
                CtlOp::Eof => self.finish_internal(sink),
            },
            TraceWord::BadCtl(word) => {
                self.err(ParseError::BadControl { word, pos });
            }
            TraceWord::Addr(addr) => self.push_addr(addr, pos, sink),
        }
    }

    fn push_addr(&mut self, addr: u32, pos: u64, sink: &mut dyn TraceSink) {
        let space = self.cur_space();
        // If the current context owes memory words, this is one.
        let pending = *self.pending_mut();
        if let Some(mut p) = pending {
            let tab = self.table_for(space).cloned();
            let info = tab.as_ref().and_then(|t| t.get(p.bb_id)).cloned();
            if let Some(info) = info {
                if (p.ops_done as usize) < info.ops.len() {
                    let op = info.ops[p.ops_done as usize];
                    // I-refs up to and including the memory instruction.
                    self.emit_irefs(&mut p, op.index + 1, space, sink);
                    sink.dref(addr, op.store, op.width, space);
                    self.stats.mem_records += 1;
                    match space {
                        Space::Kernel => self.stats.kernel_drefs += 1,
                        Space::User(_) => self.stats.user_drefs += 1,
                    }
                    p.ops_done += 1;
                    *self.pending_mut() = Some(p);
                    return;
                }
            }
        }
        // Otherwise it must be a basic-block id for this space.
        if matches!(space, Space::User(_)) && is_kernel_addr(addr) {
            self.err(ParseError::WrongSpace { word: addr, pos });
            return;
        }
        let tab = self.table_for(space).cloned();
        let info = tab.as_ref().and_then(|t| t.get(addr)).cloned();
        let Some(info) = info else {
            self.err(ParseError::UnknownBb {
                word: addr,
                pos,
                space,
            });
            return;
        };
        // Close out the previous block, then open this one.
        self.flush_pending(space, sink);
        if info.flags.idle_start {
            self.idle = true;
        }
        if info.flags.idle_stop {
            self.idle = false;
        }
        self.stats.bb_records += 1;
        let mut p = Pending {
            bb_id: addr,
            emitted: 0,
            ops_done: 0,
        };
        if info.ops.is_empty() {
            // No memory words will follow; emit all I-refs now.
            self.emit_irefs(&mut p, info.n_insts, space, sink);
            *self.pending_mut() = Some(p);
        } else {
            *self.pending_mut() = Some(p);
        }
    }

    fn finish_internal(&mut self, sink: &mut dyn TraceSink) {
        // Truncation check: any context still owing memory words?
        // User contexts are visited in ASID order: `user_pend` is a
        // HashMap, and hash order would make the trailing flush (and
        // so the emitted reference order) vary from run to run —
        // breaking the streaming pipeline's bit-identical guarantee.
        let mut user_asids: Vec<u8> = self.user_pend.keys().copied().collect();
        user_asids.sort_unstable();
        let mut owed: Vec<(u32, usize)> = Vec::new();
        let slots: Vec<(Space, Pending)> = self
            .kstack
            .iter()
            .filter_map(|s| s.map(|p| (Space::Kernel, p)))
            .chain(
                user_asids
                    .iter()
                    .filter_map(|&a| self.user_pend[&a].map(|p| (Space::User(a), p))),
            )
            .collect();
        for (space, slot) in slots {
            if let Some(info) = self.table_for(space).and_then(|t| t.get(slot.bb_id)) {
                let missing = info.ops.len().saturating_sub(slot.ops_done as usize);
                if missing > 0 {
                    owed.push((slot.bb_id, missing));
                }
            }
        }
        for (bb_id, missing) in owed {
            self.err(ParseError::Truncated { bb_id, missing });
        }
        // Flush trailing I-refs everywhere.
        while !self.kstack.is_empty() {
            self.flush_pending(Space::Kernel, sink);
            self.kstack.pop();
        }
        for a in user_asids {
            self.flush_pending(Space::User(a), sink);
        }
    }

    /// Parses a whole word slice and finalises.
    pub fn parse_all(&mut self, words: &[u32], sink: &mut dyn TraceSink) {
        self.push_words(words, sink);
        self.finish_internal(sink);
    }

    /// Parses a word slice *without* finalising — the incremental
    /// form for online analysis, where the trace arrives one buffer
    /// drain at a time and a basic block may straddle two drains.
    /// Call [`TraceParser::finish`] after the last chunk.
    pub fn push_words(&mut self, words: &[u32], sink: &mut dyn TraceSink) {
        for &w in words {
            self.push_word(w, sink);
        }
    }

    /// Finalises the stream (flushes partial blocks, checks
    /// truncation).
    pub fn finish(&mut self, sink: &mut dyn TraceSink) {
        self.finish_internal(sink);
    }
}

/// A sink that collects every reference (for tests and small tools).
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    /// `(vaddr, space, idle)` per instruction reference.
    pub irefs: Vec<(u32, Space, bool)>,
    /// `(vaddr, store, space)` per data reference.
    pub drefs: Vec<(u32, bool, Space)>,
    /// ASIDs in context-switch order.
    pub switches: Vec<u8>,
}

impl TraceSink for CollectSink {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        self.irefs.push((vaddr, space, idle));
    }

    fn dref(&mut self, vaddr: u32, store: bool, _width: Width, space: Space) {
        self.drefs.push((vaddr, store, space));
    }

    fn ctx_switch(&mut self, asid: u8) {
        self.switches.push(asid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbinfo::{BbInfo, BbTraceFlags, MemOp};
    use crate::format::{ctl, CtlOp};

    fn table(entries: Vec<(u32, BbInfo)>) -> Arc<BbTable> {
        let mut t = BbTable::new();
        for (id, i) in entries {
            t.insert(id, i);
        }
        Arc::new(t)
    }

    fn bb(orig: u32, n: u16, ops: Vec<MemOp>) -> BbInfo {
        BbInfo {
            orig_vaddr: orig,
            n_insts: n,
            ops,
            flags: BbTraceFlags::default(),
        }
    }

    fn ld(index: u16) -> MemOp {
        MemOp {
            index,
            store: false,
            width: Width::Word,
        }
    }

    fn st(index: u16) -> MemOp {
        MemOp {
            index,
            store: true,
            width: Width::Word,
        }
    }

    #[test]
    fn single_user_bb_interleaves_refs() {
        // bb at id 0x500000: orig 0x400000, 4 insts, load at 1, store at 2.
        let ut = table(vec![(0x50_0000, bb(0x40_0000, 4, vec![ld(1), st(2)]))]);
        let mut p = TraceParser::new(table(vec![]));
        p.set_user_table(3, ut);
        let words = [
            ctl(CtlOp::CtxSwitch, 3),
            0x50_0000,   // bb id
            0x0100_0040, // load addr
            0x0100_0080, // store addr
        ];
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        assert_eq!(p.stats.errors, 0, "{:?}", p.errors);
        // I I D I D I pattern by addresses:
        let i: Vec<u32> = sink.irefs.iter().map(|r| r.0).collect();
        assert_eq!(i, vec![0x40_0000, 0x40_0004, 0x40_0008, 0x40_000c]);
        assert_eq!(
            sink.drefs,
            vec![
                (0x0100_0040, false, Space::User(3)),
                (0x0100_0080, true, Space::User(3)),
            ]
        );
    }

    #[test]
    fn kernel_interrupt_mid_block_suspends_and_resumes() {
        let ut = table(vec![(0x50_0000, bb(0x40_0000, 4, vec![ld(0), ld(3)]))]);
        let kt = table(vec![(0x8003_0100, bb(0x8003_0000, 2, vec![st(1)]))]);
        let mut p = TraceParser::new(kt);
        p.set_user_table(1, ut);
        let words = [
            ctl(CtlOp::CtxSwitch, 1),
            0x50_0000,
            0x0100_0000, // first user load
            ctl(CtlOp::KEnter, 8),
            0x8003_0100, // kernel bb
            0x8030_0000, // kernel store
            ctl(CtlOp::KExit, 0),
            0x0100_0004, // second user load resumes the same bb
        ];
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        assert_eq!(p.stats.errors, 0, "{:?}", p.errors);
        assert_eq!(p.stats.kernel_entries, 1);
        // User irefs are all four instructions of the user bb.
        let user_i: Vec<u32> = sink
            .irefs
            .iter()
            .filter(|r| r.1 == Space::User(1))
            .map(|r| r.0)
            .collect();
        assert_eq!(user_i, vec![0x40_0000, 0x40_0004, 0x40_0008, 0x40_000c]);
        let kern_i: Vec<u32> = sink
            .irefs
            .iter()
            .filter(|r| r.1 == Space::Kernel)
            .map(|r| r.0)
            .collect();
        assert_eq!(kern_i, vec![0x8003_0000, 0x8003_0004]);
        // Kernel dref sits between the two user drefs in stream order.
        assert_eq!(sink.drefs[1].2, Space::Kernel);
    }

    #[test]
    fn nested_kernel_interrupts() {
        let kt = table(vec![
            (0x8003_0100, bb(0x8003_0000, 3, vec![ld(0), ld(2)])),
            (0x8004_0100, bb(0x8004_0000, 1, vec![])),
        ]);
        let mut p = TraceParser::new(kt);
        let words = [
            ctl(CtlOp::KEnter, 0),
            0x8003_0100,
            0x8030_0000,
            // Nested interrupt between this bb's two loads.
            ctl(CtlOp::KEnter, 0),
            0x8004_0100,
            ctl(CtlOp::KExit, 0),
            0x8030_0004, // second load of the outer bb
            ctl(CtlOp::KExit, 0),
        ];
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        assert_eq!(p.stats.errors, 0, "{:?}", p.errors);
        assert_eq!(sink.drefs.len(), 2);
        assert_eq!(sink.irefs.len(), 4);
    }

    #[test]
    fn unknown_bb_is_detected() {
        let ut = table(vec![(0x50_0000, bb(0x40_0000, 1, vec![]))]);
        let mut p = TraceParser::new(table(vec![]));
        p.set_user_table(0, ut);
        let mut sink = CollectSink::default();
        p.parse_all(&[0x66_0000], &mut sink);
        assert_eq!(p.stats.errors, 1);
        assert!(matches!(p.errors[0], ParseError::UnknownBb { .. }));
    }

    #[test]
    fn kernel_addr_in_user_context_is_wrong_space() {
        let mut p = TraceParser::new(table(vec![]));
        p.set_user_table(0, table(vec![]));
        let mut sink = CollectSink::default();
        p.parse_all(&[0x8003_0000], &mut sink);
        assert!(matches!(p.errors[0], ParseError::WrongSpace { .. }));
    }

    #[test]
    fn truncated_block_is_detected() {
        let ut = table(vec![(0x50_0000, bb(0x40_0000, 2, vec![ld(0), ld(1)]))]);
        let mut p = TraceParser::new(table(vec![]));
        p.set_user_table(0, ut);
        let mut sink = CollectSink::default();
        p.parse_all(
            &[ctl(CtlOp::CtxSwitch, 0), 0x50_0000, 0x0100_0000],
            &mut sink,
        );
        assert!(p
            .errors
            .iter()
            .any(|e| matches!(e, ParseError::Truncated { missing: 1, .. })));
    }

    #[test]
    fn idle_flags_count_instructions() {
        let mut idle_bb = bb(0x8005_0000, 3, vec![]);
        idle_bb.flags.idle_start = true;
        let mut stop_bb = bb(0x8005_0100, 2, vec![]);
        stop_bb.flags.idle_stop = true;
        let kt = table(vec![(0x8005_0010, idle_bb), (0x8005_0110, stop_bb)]);
        let mut p = TraceParser::new(kt);
        let words = [
            ctl(CtlOp::KEnter, 0),
            0x8005_0010,
            0x8005_0010,
            0x8005_0110,
            ctl(CtlOp::KExit, 0),
        ];
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        assert_eq!(p.stats.errors, 0, "{:?}", p.errors);
        // Two idle bbs of 3 insts each; the stop bb is not idle.
        assert_eq!(p.stats.idle_insts, 6);
    }

    #[test]
    fn mode_transitions_counted() {
        let mut p = TraceParser::new(table(vec![]));
        let mut sink = CollectSink::default();
        p.parse_all(
            &[
                ctl(CtlOp::TraceOff, 0),
                ctl(CtlOp::TraceOn, 0),
                ctl(CtlOp::TraceOff, 0),
            ],
            &mut sink,
        );
        assert_eq!(p.stats.mode_transitions, 2);
    }

    #[test]
    fn context_switch_between_processes() {
        let t1 = table(vec![(0x50_0000, bb(0x40_0000, 1, vec![ld(0)]))]);
        let t2 = table(vec![(0x60_0000, bb(0x41_0000, 1, vec![]))]);
        let mut p = TraceParser::new(table(vec![]));
        p.set_user_table(1, t1);
        p.set_user_table(2, t2);
        let words = [
            ctl(CtlOp::CtxSwitch, 1),
            0x50_0000,
            // Interrupted before its load arrives; scheduler switches.
            ctl(CtlOp::KEnter, 0),
            ctl(CtlOp::CtxSwitch, 2),
            ctl(CtlOp::KExit, 0),
            0x60_0000,
            // Back to process 1; the pending load finally lands.
            ctl(CtlOp::KEnter, 0),
            ctl(CtlOp::CtxSwitch, 1),
            ctl(CtlOp::KExit, 0),
            0x0100_0000,
        ];
        let mut sink = CollectSink::default();
        p.parse_all(&words, &mut sink);
        assert_eq!(p.stats.errors, 0, "{:?}", p.errors);
        assert_eq!(sink.drefs, vec![(0x0100_0000, false, Space::User(1))]);
        assert_eq!(p.stats.ctx_switches, 3);
    }
}
