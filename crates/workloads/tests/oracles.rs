//! Algorithm oracles: selected workloads re-implemented in Rust and
//! compared against the W3K programs' results — the workloads are
//! real algorithms, not reference generators.

use wrl_workloads::{by_name, run_bare, support};

#[test]
#[allow(clippy::needless_range_loop)]
fn espresso_popcount_matches_rust_oracle() {
    // Reimplement the cube build + pairwise intersection popcount.
    let input = wrl_workloads::espresso::files().remove(0).1;
    let n_cubes = 96usize;
    let words = 8usize;
    let len = input.len() as u64;
    let mut cubes = vec![[0u32; 8]; n_cubes];
    for (i, cube) in cubes.iter_mut().enumerate() {
        for (w, slot) in cube.iter_mut().enumerate() {
            let off = ((i as u64 * 131 + w as u64 * 17) % (len - 4)) as usize;
            *slot = u32::from_le_bytes(input[off..off + 4].try_into().unwrap());
        }
    }
    let mut popcnt = 0u64;
    for i in 0..n_cubes {
        for j in 0..n_cubes {
            if i == j {
                continue;
            }
            for w in 0..words {
                popcnt += (cubes[i][w] & cubes[j][w]).count_ones() as u64;
            }
        }
    }
    let r = run_bare(&by_name("espresso").unwrap());
    assert_eq!(r.env.exit, Some(popcnt as u32));
}

#[test]
fn eqntott_truth_table_matches_rust_oracle() {
    let input = wrl_workloads::eqntott::files().remove(0).1;
    // The equation-flavour fold: s3 = ((s3 ^ byte) << 1) from the end.
    let mut s3: u32 = 0;
    for &b in input.iter() {
        // Assembly folds from the end backwards; replicate exactly:
        // it iterates t0 = len-1 down to 0.
        let _ = b;
    }
    for &b in input.iter().rev() {
        s3 = (s3 ^ b as u32) << 1;
    }
    let n = 393_216u32;
    let table_mask = (2u32 << 20) - 1;
    let mut table = vec![0u8; (table_mask + 1) as usize];
    let mut ones = 0u32;
    for i in 0..n {
        let mut x = (i >> 1) ^ i;
        x &= i >> 3;
        x |= i >> 7;
        x ^= i >> 11;
        x ^= s3;
        x &= x >> 2;
        let v = x & 1;
        ones = ones.wrapping_add(v);
        let idx = i.wrapping_mul(40503) & table_mask;
        table[idx as usize] = v as u8;
    }
    let mut checksum = 0u32;
    let mut k = 0u32;
    loop {
        checksum = checksum.wrapping_add(table[k as usize] as u32);
        k += 64;
        if k == table_mask + 1 {
            break;
        }
    }
    let want = ones.wrapping_add(checksum);
    let r = run_bare(&by_name("eqntott").unwrap());
    assert_eq!(r.env.exit, Some(want));
}

#[test]
fn gcc_checksum_matches_rust_oracle() {
    // Replicate lex -> build -> 3 optimisation passes -> emit.
    let src = wrl_workloads::gcc::files().remove(0).1;
    let n = src.len();
    let class = |c: u8| -> u32 {
        if c.is_ascii_lowercase() {
            0
        } else if c.is_ascii_digit() {
            1
        } else if c == b' ' || c == b'\n' {
            2
        } else {
            3
        }
    };
    #[derive(Clone)]
    struct Node {
        kind: u32,
        val: u32,
        left: usize,
        right: usize,
    }
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| {
            let c = src[i] as u32;
            let tok = class(src[i]) | ((c * 7) & 0x7c);
            Node {
                kind: tok,
                val: i as u32,
                left: ((i * 7 + 1) & 16383),
                right: ((i * 13 + 5) & 16383),
            }
        })
        .collect();
    for _ in 0..3 {
        for i in 0..n {
            let v = nodes[i].val;
            if nodes[i].kind & 3 == 1 {
                let lv = nodes[nodes[i].left].val;
                nodes[i].val = v.wrapping_mul(3).wrapping_add(lv);
            } else {
                let rv = nodes[nodes[i].right].val;
                nodes[i].val = (v >> 1) ^ rv;
            }
        }
    }
    // Emit handlers.
    let pool = |p: u32, w: u32| 0x1234_5678u32.wrapping_mul(p * 8 + w + 1);
    let mut checksum = 0u32;
    for node in nodes.iter() {
        let k = node.kind & 127;
        let c1 = (k * 2654435761u32.wrapping_rem(97)) & 0x7fff;
        let t1 = pool(k % 16, k % 8);
        let a0 = node.val;
        let mut v0 = a0.wrapping_add(c1 & 0xfff);
        match k % 5 {
            0 => {
                v0 ^= t1;
                v0 = v0.wrapping_add(v0 << ((k % 7) + 1));
            }
            1 => {
                v0 = v0.wrapping_add(t1);
                v0 ^= v0 >> ((k % 5) + 1);
            }
            2 => {
                v0 = t1.wrapping_sub(v0);
                v0 &= 0xffu32.wrapping_add(k & 0xff) & 0xffff;
                v0 = v0.wrapping_add(v0 << 2);
            }
            3 => {
                v0 |= t1;
                v0 = v0.wrapping_sub(((v0 as i32) >> 3) as u32);
                v0 ^= k & 0xffff;
            }
            _ => {
                let t2 = !(v0 | t1) >> ((k % 9) + 1);
                v0 = v0.wrapping_add(t2);
            }
        }
        v0 &= 0xff;
        checksum = checksum.wrapping_add(v0);
    }
    let r = run_bare(&by_name("gcc").unwrap());
    assert_eq!(r.env.exit, Some(checksum));
    let _ = support::gen_text(0, 0);
}
