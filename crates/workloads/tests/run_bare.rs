//! Runs every workload to completion on the bare machine and checks
//! correctness properties: clean exit, deterministic output, the
//! expected algorithmic results, and each workload's characteristic
//! event signature (the behaviours Table 1/Table 3 depend on).

use wrl_workloads::{all, by_name, run_bare};

#[test]
fn all_workloads_exit_cleanly_and_deterministically() {
    for w in all() {
        let r1 = run_bare(&w);
        assert!(r1.env.exit.is_some(), "{} did not exit", w.name);
        assert!(
            !r1.env.output.is_empty(),
            "{} produced no console output",
            w.name
        );
        let w2 = by_name(w.name).unwrap();
        let r2 = run_bare(&w2);
        assert_eq!(
            r1.env.output, r2.env.output,
            "{} output is not deterministic",
            w.name
        );
        assert_eq!(r1.insts, r2.insts, "{} path is not deterministic", w.name);
    }
}

#[test]
fn compress_round_trip_verifies() {
    let r = run_bare(&by_name("compress").unwrap());
    // exit code = mismatch count: LZW decode must reproduce the input.
    assert_eq!(r.env.exit, Some(0), "LZW round-trip mismatches");
    // The compressed stream was written and is smaller than the input.
    let out = r.env.files.get("compress.out").expect("compress.out");
    assert!(!out.is_empty());
    assert!(
        out.len() < 100 * 1024,
        "no compression achieved: {} bytes",
        out.len()
    );
}

#[test]
fn lisp_finds_92_solutions() {
    let r = run_bare(&by_name("lisp").unwrap());
    assert_eq!(r.env.exit, Some(92));
}

#[test]
fn sed_edits_and_counts_lines() {
    let r = run_bare(&by_name("sed").unwrap());
    let input = wrl_workloads::sed::files().remove(0).1;
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u32;
    assert_eq!(r.env.exit, Some(lines));
    let out = r.env.files.get("sed.out").expect("sed.out written");
    assert_eq!(out.len(), 3 * input.len(), "three passes written");
    assert!(!out.contains(&b'e'), "all 'e' replaced");
    assert!(out.contains(&b'E'));
}

#[test]
fn egrep_counts_matches() {
    let r = run_bare(&by_name("egrep").unwrap());
    let input = wrl_workloads::egrep::files().remove(0).1;
    let expected = input.windows(5).filter(|w| w == b"trace").count() as u32 * 3;
    assert_eq!(r.env.exit, Some(expected));
    assert!(expected > 0, "pattern must occur in the input");
}

#[test]
fn yacc_accepts_the_token_stream() {
    let r = run_bare(&by_name("yacc").unwrap());
    // Reductions are counted; a valid stream must reduce a lot and
    // never hit the error path (error path would still terminate, but
    // reductions would be implausibly low).
    let reductions = r.env.exit.unwrap();
    assert!(reductions > 5_000, "only {reductions} reductions");
}

#[test]
fn eqntott_thrashes_the_tlb_scale() {
    // On the bare machine there is no TLB, but the store pattern must
    // touch far more distinct pages than the TLB holds.
    let r = run_bare(&by_name("eqntott").unwrap());
    assert!(r.insts > 4_000_000, "eqntott too small: {}", r.insts);
}

#[test]
fn relative_run_lengths_match_table1_ordering() {
    // Table 1/2 ordering: tomcatv is the longest workload, eqntott and
    // lisp are long, sed is the shortest.
    let insts: std::collections::HashMap<&str, u64> =
        all().iter().map(|w| (w.name, run_bare(w).insts)).collect();
    let t = |n: &str| insts[n];
    assert!(t("tomcatv") > t("eqntott"));
    assert!(t("eqntott") > t("espresso"));
    assert!(t("lisp") > t("gcc"));
    assert!(t("sed") < t("egrep"));
    assert!(t("sed") < t("liv") * 4, "sed is among the shortest");
    for (name, n) in &insts {
        assert!(*n > 100_000, "{name} is trivially small ({n})");
    }
}

#[test]
fn fp_workloads_interlock_and_liv_pressures_write_buffer() {
    let liv = run_bare(&by_name("liv").unwrap());
    assert!(liv.machine.counters.fp_stall_cycles > 0);
    assert!(
        liv.machine.counters.wb_stall_cycles > 0,
        "liv must pressure the write buffer"
    );
    let fp = run_bare(&by_name("fpppp").unwrap());
    assert!(fp.machine.counters.fp_stall_cycles > 0);
    assert!(
        fp.machine.counters.wb_stall_cycles > 0,
        "fpppp's result-store bursts must stall the write buffer"
    );
}

#[test]
fn gcc_has_large_text_footprint() {
    let w = by_name("gcc").unwrap();
    let linked = wrl_workloads::link_user(&w.objects);
    let gcc_text = linked.exe.text_size();
    let sed = wrl_workloads::link_user(&by_name("sed").unwrap().objects);
    assert!(
        gcc_text > 2 * sed.exe.text_size(),
        "gcc text {} vs sed {}",
        gcc_text,
        sed.exe.text_size()
    );
    let r = run_bare(&w);
    assert!(r.env.files.contains_key("gcc.out"));
}
