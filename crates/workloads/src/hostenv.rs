//! Bare-machine emulation of the W3K Unix syscall ABI.
//!
//! Used to run workloads standalone — for workload unit tests, for
//! pixie-style arithmetic-stall estimation runs, and for the epoxie
//! verification runs — without booting a kernel. The full-system
//! experiments run the same binaries under the real kernels instead.

use std::collections::HashMap;

use wrl_isa::reg::{A0, A1, A2, V0};
use wrl_machine::Machine;
use wrl_trace::layout::sys;

/// An open file descriptor.
#[derive(Clone, Debug)]
struct Fd {
    name: String,
    offset: usize,
    writable: bool,
}

/// The host-side file system and syscall handler.
#[derive(Clone, Debug, Default)]
pub struct HostEnv {
    /// Files by name.
    pub files: HashMap<String, Vec<u8>>,
    fds: Vec<Option<Fd>>,
    /// Everything written to fd 1.
    pub output: Vec<u8>,
    /// Exit code once `exit` is called.
    pub exit: Option<u32>,
    /// Current program break for `sbrk`.
    pub brk: u32,
    /// Syscall counts by number (diagnostics).
    pub counts: HashMap<u32, u64>,
}

impl HostEnv {
    /// Creates an environment with the given files.
    pub fn new(files: impl IntoIterator<Item = (String, Vec<u8>)>) -> HostEnv {
        HostEnv {
            files: files.into_iter().collect(),
            fds: vec![None, None, None], // 0..2 reserved
            ..HostEnv::default()
        }
    }

    fn read_cstr(m: &Machine, mut vaddr: u32) -> String {
        let mut s = Vec::new();
        for _ in 0..256 {
            let Some(w) = m.peek_virt_word(vaddr & !3) else {
                break;
            };
            let b = (w >> ((vaddr & 3) * 8)) as u8;
            if b == 0 {
                break;
            }
            s.push(b);
            vaddr += 1;
        }
        String::from_utf8_lossy(&s).into_owned()
    }

    /// Services one ABI syscall on a bare machine. Returns `false`
    /// when the program has exited.
    pub fn handle(&mut self, m: &mut Machine) -> bool {
        let num = m.cpu.regs[V0.idx()];
        let a0 = m.cpu.regs[A0.idx()];
        let a1 = m.cpu.regs[A1.idx()];
        let a2 = m.cpu.regs[A2.idx()];
        *self.counts.entry(num).or_insert(0) += 1;
        let ret: i32 = match num {
            sys::EXIT => {
                self.exit = Some(a0);
                return false;
            }
            sys::OPEN | sys::CREAT => {
                let name = Self::read_cstr(m, a0);
                if num == sys::CREAT {
                    self.files.insert(name.clone(), Vec::new());
                } else if !self.files.contains_key(&name) {
                    m.cpu.regs[V0.idx()] = -1i32 as u32;
                    return true;
                }
                let fd = self.fds.len();
                self.fds.push(Some(Fd {
                    name,
                    offset: 0,
                    writable: true,
                }));
                fd as i32
            }
            sys::READ => {
                let Some(Some(fd)) = self.fds.get_mut(a0 as usize) else {
                    m.cpu.regs[V0.idx()] = -1i32 as u32;
                    return true;
                };
                let data = self.files.get(&fd.name).cloned().unwrap_or_default();
                let n = (data.len().saturating_sub(fd.offset)).min(a2 as usize);
                let chunk = &data[fd.offset..fd.offset + n];
                for (k, &b) in chunk.iter().enumerate() {
                    let va = a1 + k as u32;
                    // Bare identity mapping: write physical directly.
                    m.mem.write_byte(va, b);
                }
                fd.offset += n;
                n as i32
            }
            sys::WRITE => {
                let mut buf = Vec::with_capacity(a2 as usize);
                for k in 0..a2 {
                    buf.push(m.mem.read_byte(a1 + k));
                }
                if a0 == 1 {
                    self.output.extend_from_slice(&buf);
                } else if let Some(Some(fd)) = self.fds.get_mut(a0 as usize) {
                    if fd.writable {
                        let file = self.files.entry(fd.name.clone()).or_default();
                        let end = fd.offset + buf.len();
                        if file.len() < end {
                            file.resize(end, 0);
                        }
                        file[fd.offset..end].copy_from_slice(&buf);
                        fd.offset = end;
                    }
                }
                a2 as i32
            }
            sys::CLOSE => {
                if let Some(slot) = self.fds.get_mut(a0 as usize) {
                    *slot = None;
                }
                0
            }
            sys::SBRK => {
                let old = self.brk;
                self.brk = self.brk.wrapping_add(a0);
                old as i32
            }
            sys::GETPID => 42,
            sys::YIELD | sys::TRACE_CTL => 0,
            _ => -1,
        };
        m.cpu.regs[V0.idx()] = ret as u32;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_machine::Config;

    #[test]
    fn cstr_and_file_round_trip() {
        let mut m = Machine::new(Config::bare(), vec![]);
        let mut env = HostEnv::new([("in".to_string(), b"hello".to_vec())]);
        env.brk = 0x0100_0000;
        // Plant "in\0" at 0x1000.
        m.mem.write_byte(0x1000, b'i');
        m.mem.write_byte(0x1001, b'n');
        m.mem.write_byte(0x1002, 0);
        m.cpu.regs[V0.idx()] = sys::OPEN;
        m.cpu.regs[A0.idx()] = 0x1000;
        assert!(env.handle(&mut m));
        let fd = m.cpu.regs[V0.idx()];
        assert_eq!(fd, 3);
        // read(fd, 0x2000, 16)
        m.cpu.regs[V0.idx()] = sys::READ;
        m.cpu.regs[A0.idx()] = fd;
        m.cpu.regs[A1.idx()] = 0x2000;
        m.cpu.regs[A2.idx()] = 16;
        env.handle(&mut m);
        assert_eq!(m.cpu.regs[V0.idx()], 5);
        assert_eq!(m.mem.read_byte(0x2000), b'h');
        assert_eq!(m.mem.read_byte(0x2004), b'o');
        // exit(7)
        m.cpu.regs[V0.idx()] = sys::EXIT;
        m.cpu.regs[A0.idx()] = 7;
        assert!(!env.handle(&mut m));
        assert_eq!(env.exit, Some(7));
    }

    #[test]
    fn write_to_console_and_file() {
        let mut m = Machine::new(Config::bare(), vec![]);
        let mut env = HostEnv::new([]);
        for (i, b) in b"ok\n".iter().enumerate() {
            m.mem.write_byte(0x3000 + i as u32, *b);
        }
        m.cpu.regs[V0.idx()] = sys::WRITE;
        m.cpu.regs[A0.idx()] = 1;
        m.cpu.regs[A1.idx()] = 0x3000;
        m.cpu.regs[A2.idx()] = 3;
        env.handle(&mut m);
        assert_eq!(env.output, b"ok\n");
        // creat + write to a file
        m.mem.write_byte(0x3100, b'f');
        m.mem.write_byte(0x3101, 0);
        m.cpu.regs[V0.idx()] = sys::CREAT;
        m.cpu.regs[A0.idx()] = 0x3100;
        env.handle(&mut m);
        let fd = m.cpu.regs[V0.idx()];
        m.cpu.regs[V0.idx()] = sys::WRITE;
        m.cpu.regs[A0.idx()] = fd;
        m.cpu.regs[A1.idx()] = 0x3000;
        m.cpu.regs[A2.idx()] = 2;
        env.handle(&mut m);
        assert_eq!(env.files.get("f").unwrap(), b"ok");
    }
}
