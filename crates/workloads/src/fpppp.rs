//! `fpppp` — "A program that does quantum chemistry analysis …
//! written in Fortran" (Table 1).
//!
//! fpppp's signature is enormous straight-line basic blocks of
//! floating-point code (two-electron integral evaluation with no
//! branches for hundreds of instructions). Four generated routines
//! each evaluate a ~250-operation dependence web over eight input
//! doubles and store four results; the long blocks make fpppp the
//! workload with the lowest per-block instrumentation overhead and
//! significant FP interlock.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Main-loop iterations.
const ITERS: i32 = 6000;
/// FP operations per generated routine.
const OPS: usize = 250;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("fpppp");

    // Four straight-line integral kernels.
    let mut rng = 0xf999u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for k in 0..4 {
        a.global_label(&format!("fp_kern{k}"));
        a.la(T0, "fp_in");
        // Load eight input doubles into f0..f14.
        for (slot, reg) in [F0, F2, F4, F6, F8, F10, F12, F14].iter().enumerate() {
            a.ldc1(*reg, (slot * 8) as i16, T0);
        }
        // A long dependence web over f0..f22.
        let regs = [F0, F2, F4, F6, F8, F10, F12, F14, F16, F18, F20, F22];
        for _ in 0..OPS {
            let d = regs[8 + (next() % 4) as usize]; // dest in temps
            let s1 = regs[(next() % 12) as usize];
            let s2 = regs[(next() % 8) as usize];
            match next() % 8 {
                0..=2 => a.add_d(d, s1, s2),
                3 | 4 => a.mul_d(d, s1, s2),
                5 | 6 => a.sub_d(d, s1, s2),
                _ => a.abs_d(d, s1),
            }
        }
        a.la(T1, "fp_out");
        for (slot, reg) in [F16, F18, F20, F22].iter().enumerate() {
            a.sdc1(*reg, ((k * 4 + slot) * 8) as i16, T1);
        }
        a.jr(RA);
        a.nop();
    }

    a.global_label("main");
    a.addiu(SP, SP, -16);
    a.sw(RA, 12, SP);
    a.sw(S0, 8, SP);
    // Initialise the input vector with bounded constants.
    a.la(T0, "fp_in");
    for slot in 0..8 {
        a.li_d(F0, 0.25 + slot as f64 * 0.125);
        a.sdc1(F0, slot * 8, T0);
    }
    a.li(S0, ITERS);
    a.label("fp_loop");
    for k in 0..4 {
        a.jal(&format!("fp_kern{k}"));
        a.nop();
    }
    a.addiu(S0, S0, -1);
    a.bne(S0, ZERO, "fp_loop");
    a.nop();
    // Checksum: integer view of the first result word.
    a.la(T0, "fp_out");
    a.lw(V0, 0, T0);
    a.srl(A0, V0, 16);
    a.jal("__print_u32");
    a.nop();
    a.la(T0, "fp_out");
    a.lw(V0, 0, T0);
    a.lw(RA, 12, SP);
    a.lw(S0, 8, SP);
    a.jr(RA);
    a.addiu(SP, SP, 16);

    a.data();
    a.align4();
    a.label("fp_in");
    a.space(8 * 8);
    a.label("fp_out");
    a.space(16 * 8);
    a.finish()
}

/// No input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![]
}
