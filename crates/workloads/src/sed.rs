//! `sed` — "The UNIX stream editor run three times over the same 17K
//! input file" (Table 1).
//!
//! Reads the input, performs a global single-character substitution
//! and line accounting in three passes, and writes the edited stream
//! to an output file each pass. The shortest workload: its §5.1
//! prediction error is dominated by the disk-latency approximation.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("sed");
    a.global_label("main");
    a.addiu(SP, SP, -40);
    a.sw(RA, 36, SP);
    a.sw(S0, 32, SP);
    a.sw(S1, 28, SP);
    a.sw(S2, 24, SP);
    a.sw(S3, 20, SP);
    a.sw(S4, 16, SP);

    // Read the input file.
    a.la(A0, "sed_in_name");
    a.la(A1, "sed_inbuf");
    a.li(A2, 24 * 1024);
    a.jal("__read_all");
    a.nop();
    a.move_(S0, V0); // input length

    // Create the output file.
    a.la(A0, "sed_out_name");
    a.jal("__creat");
    a.nop();
    a.move_(S3, V0); // out fd

    a.li(S4, 3); // three passes
    a.label("pass");
    a.li(S1, 0); // index
    a.li(S2, 0); // lines
    a.la(T6, "sed_inbuf");
    a.la(T7, "sed_outbuf");
    a.label("xf");
    a.beq(S1, S0, "xf_done");
    a.nop();
    a.addu(T0, T6, S1);
    a.lbu(T1, 0, T0);
    // s/e/E/g
    a.li(T2, b'e' as i32);
    a.bne(T1, T2, "not_e");
    a.nop();
    a.li(T1, b'E' as i32);
    a.label("not_e");
    // Count lines.
    a.li(T2, b'\n' as i32);
    a.bne(T1, T2, "not_nl");
    a.nop();
    a.addiu(S2, S2, 1);
    a.label("not_nl");
    a.addu(T3, T7, S1);
    a.sb(T1, 0, T3);
    a.b("xf");
    a.addiu(S1, S1, 1);
    a.label("xf_done");

    // Write the pass's output.
    a.move_(A0, S3);
    a.la(A1, "sed_outbuf");
    a.move_(A2, S0);
    a.jal("__write");
    a.nop();
    a.addiu(S4, S4, -1);
    a.bne(S4, ZERO, "pass");
    a.nop();

    a.move_(A0, S3);
    a.jal("__close");
    a.nop();
    a.move_(A0, S2);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S2);
    a.lw(RA, 36, SP);
    a.lw(S0, 32, SP);
    a.lw(S1, 28, SP);
    a.lw(S2, 24, SP);
    a.lw(S3, 20, SP);
    a.lw(S4, 16, SP);
    a.jr(RA);
    a.addiu(SP, SP, 40);

    a.data();
    a.label("sed_in_name");
    a.asciiz("sed.in");
    a.label("sed_out_name");
    a.asciiz("sed.out");
    a.align4();
    a.label("sed_inbuf");
    a.space(24 * 1024);
    a.label("sed_outbuf");
    a.space(24 * 1024);
    a.finish()
}

/// Input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![(
        "sed.in".to_string(),
        crate::support::gen_text(0x5ed, 17 * 1024),
    )]
}
