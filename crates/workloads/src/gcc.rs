//! `gcc` — "The GNU C compiler translating a 17K (preprocessed)
//! source file into optimized Sun-3 assembly code" (Table 1).
//!
//! A compiler's signature behaviour is a large instruction footprint
//! exercised in phases: lexing, tree building, repeated optimisation
//! passes over heap-allocated nodes, and code emission dispatched
//! through per-construct handlers. This program reproduces that
//! shape: a lexer pass, a node-table builder, three optimisation
//! passes chasing node links, and an emitter that dispatches every
//! node through a jump table of 128 *distinct* generated handler
//! functions — giving gcc by far the largest text of the workloads.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

const N_HANDLERS: u32 = 128;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("gcc");
    a.global_label("main");
    a.addiu(SP, SP, -40);
    a.sw(RA, 36, SP);
    a.sw(S0, 32, SP);
    a.sw(S1, 28, SP);
    a.sw(S2, 24, SP);
    a.sw(S3, 20, SP);
    a.sw(S4, 16, SP);

    a.la(A0, "gc_in_name");
    a.la(A1, "gc_src");
    a.li(A2, 24 * 1024);
    a.jal("__read_all");
    a.nop();
    a.move_(S0, V0); // source length

    // ---- Phase 1: lex. token[i] = class(c) | handler-index bits ----
    a.li(S1, 0);
    a.la(T6, "gc_src");
    a.la(T7, "gc_tok");
    a.label("gc_lex");
    a.beq(S1, S0, "gc_lex_done");
    a.nop();
    a.addu(T0, T6, S1);
    a.lbu(T1, 0, T0);
    // class: letter 0, digit 1, space 2, other 3.
    a.li(T2, 0);
    a.sltiu(T3, T1, 97); // < 'a'?
    a.bne(T3, ZERO, "gc_notlower");
    a.nop();
    a.sltiu(T3, T1, 123); // <= 'z'?
    a.bne(T3, ZERO, "gc_class_done");
    a.li(T2, 0);
    a.label("gc_notlower");
    a.sltiu(T3, T1, 48);
    a.bne(T3, ZERO, "gc_other");
    a.nop();
    a.sltiu(T3, T1, 58);
    a.bne(T3, ZERO, "gc_class_done");
    a.li(T2, 1);
    a.label("gc_other");
    a.li(T4, 32);
    a.beq(T1, T4, "gc_class_done");
    a.li(T2, 2);
    a.li(T4, 10);
    a.beq(T1, T4, "gc_class_done");
    a.li(T2, 2);
    a.li(T2, 3);
    a.label("gc_class_done");
    // token = class | (c*7 & 0x7c): low bits select the handler.
    a.sll(T3, T1, 3);
    a.subu(T3, T3, T1); // c*7
    a.andi(T3, T3, 0x7c);
    a.or(T2, T2, T3);
    a.addu(T4, T7, S1);
    a.sb(T2, 0, T4);
    a.b("gc_lex");
    a.addiu(S1, S1, 1);
    a.label("gc_lex_done");

    // ---- Phase 2: build the node table on the heap ----
    // node[i] = { kind, val, left, right } (4 words, 16 bytes).
    a.sll(A0, S0, 4);
    a.jal("__sbrk");
    a.nop();
    a.move_(S2, V0); // node base
    a.li(S1, 0);
    a.label("gc_build");
    a.beq(S1, S0, "gc_build_done");
    a.nop();
    a.addu(T0, T7, S1);
    a.lbu(T1, 0, T0); // token
    a.sll(T2, S1, 4);
    a.addu(T2, S2, T2); // &node[i]
    a.sw(T1, 0, T2); // kind
    a.sw(S1, 4, T2); // val = i
                     // left = (i*7+1) & 16383, right = (i*13+5) & 16383 — link
                     // indices (the 17K source guarantees they stay in range).
    a.sll(T3, S1, 3);
    a.subu(T3, T3, S1);
    a.addiu(T3, T3, 1);
    a.andi(T3, T3, 16383);
    a.sw(T3, 8, T2);
    a.sll(T4, S1, 3);
    a.addu(T4, T4, S1);
    a.sll(T5, S1, 2);
    a.addu(T4, T4, T5); // i*13
    a.addiu(T4, T4, 5);
    a.andi(T4, T4, 16383);
    a.sw(T4, 12, T2);
    a.b("gc_build");
    a.addiu(S1, S1, 1);
    a.label("gc_build_done");

    // ---- Phase 3: three optimisation passes ----
    a.li(S3, 3);
    a.label("gc_opt_pass");
    a.li(S1, 0);
    a.label("gc_opt");
    a.beq(S1, S0, "gc_opt_done");
    a.nop();
    a.sll(T0, S1, 4);
    a.addu(T0, S2, T0);
    a.lw(T1, 0, T0); // kind
    a.lw(T2, 4, T0); // val
    a.andi(T3, T1, 3);
    a.li(T4, 1);
    a.bne(T3, T4, "gc_opt_even");
    a.nop();
    // "Constant fold": val = val*3 + left.val
    a.lw(T5, 8, T0); // left index
    a.sll(T5, T5, 4);
    a.addu(T5, S2, T5);
    a.lw(T5, 4, T5); // left.val
    a.sll(T6, T2, 1);
    a.addu(T2, T6, T2);
    a.addu(T2, T2, T5);
    a.b("gc_opt_store");
    a.nop();
    a.label("gc_opt_even");
    // "Strength reduce": val = (val >> 1) ^ right.val
    a.lw(T5, 12, T0);
    a.sll(T5, T5, 4);
    a.addu(T5, S2, T5);
    a.lw(T5, 4, T5);
    a.srl(T2, T2, 1);
    a.xor(T2, T2, T5);
    a.label("gc_opt_store");
    a.sw(T2, 4, T0);
    a.b("gc_opt");
    a.addiu(S1, S1, 1);
    a.label("gc_opt_done");
    a.addiu(S3, S3, -1);
    a.bne(S3, ZERO, "gc_opt_pass");
    a.nop();

    // ---- Phase 4: emit through the handler jump table ----
    a.li(S1, 0);
    a.li(S4, 0); // checksum
    a.la(T7, "gc_outbuf");
    a.label("gc_emit");
    a.beq(S1, S0, "gc_emit_done");
    a.nop();
    a.sll(T0, S1, 4);
    a.addu(T0, S2, T0);
    a.lw(T1, 0, T0); // kind
    a.lw(A0, 4, T0); // val -> handler argument
    a.andi(T1, T1, (N_HANDLERS - 1) as u16);
    a.sll(T1, T1, 2);
    a.la(T2, "gc_htab");
    a.addu(T2, T2, T1);
    a.lw(T3, 0, T2);
    a.jalr(T3);
    a.nop();
    a.addu(S4, S4, V0);
    a.addu(T4, T7, S1);
    a.sb(V0, 0, T4);
    a.b("gc_emit");
    a.addiu(S1, S1, 1);
    a.label("gc_emit_done");

    // Write the "assembly" output.
    a.la(A0, "gc_out_name");
    a.jal("__creat");
    a.nop();
    a.move_(A0, V0);
    a.la(A1, "gc_outbuf");
    a.move_(A2, S0);
    a.jal("__write");
    a.nop();

    a.move_(A0, S4);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S4);
    a.lw(RA, 36, SP);
    a.lw(S0, 32, SP);
    a.lw(S1, 28, SP);
    a.lw(S2, 24, SP);
    a.lw(S3, 20, SP);
    a.lw(S4, 16, SP);
    a.jr(RA);
    a.addiu(SP, SP, 40);

    // ---- The 128 generated emit handlers ----
    // Each is distinct straight-line code: a few arithmetic ops on a0
    // with per-handler constants and a load from its own literal pool,
    // returning a byte in v0. Together they give gcc its large,
    // sparsely-reused text footprint.
    for k in 0..N_HANDLERS {
        a.label(&format!("gc_h{k}"));
        let c1 = (k * 2654435761u32.wrapping_rem(97)) & 0x7fff;
        a.la(T0, &format!("gc_pool{}", k % 16));
        a.lw(T1, ((k % 8) * 4) as i16, T0);
        a.addiu(V0, A0, (c1 & 0xfff) as i16);
        match k % 5 {
            0 => {
                a.xor(V0, V0, T1);
                a.sll(T2, V0, (k % 7) as u8 + 1);
                a.addu(V0, V0, T2);
            }
            1 => {
                a.addu(V0, V0, T1);
                a.srl(T2, V0, (k % 5) as u8 + 1);
                a.xor(V0, V0, T2);
            }
            2 => {
                a.subu(V0, T1, V0);
                a.andi(V0, V0, 0xffu16.wrapping_add(k as u16 & 0xff));
                a.sll(T2, V0, 2);
                a.addu(V0, V0, T2);
            }
            3 => {
                a.or(V0, V0, T1);
                a.sra(T2, V0, 3);
                a.subu(V0, V0, T2);
                a.xori(V0, V0, (k & 0xffff) as u16);
            }
            _ => {
                a.nor(T2, V0, T1);
                a.srl(T2, T2, (k % 9) as u8 + 1);
                a.addu(V0, V0, T2);
            }
        }
        a.andi(V0, V0, 0xff);
        a.jr(RA);
        a.nop();
    }

    a.data();
    a.label("gc_in_name");
    a.asciiz("gcc.in");
    a.label("gc_out_name");
    a.asciiz("gcc.out");
    a.align4();
    a.label("gc_htab");
    for k in 0..N_HANDLERS {
        a.word_sym(&format!("gc_h{k}"), 0);
    }
    for p in 0..16 {
        a.label(&format!("gc_pool{p}"));
        for w in 0..8 {
            a.word(0x1234_5678u32.wrapping_mul(p * 8 + w + 1));
        }
    }
    a.label("gc_src");
    a.space(24 * 1024);
    a.label("gc_tok");
    a.space(24 * 1024);
    a.label("gc_outbuf");
    a.space(24 * 1024);
    a.finish()
}

/// Input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![(
        "gcc.in".to_string(),
        crate::support::gen_text(0x9cc, 17 * 1024),
    )]
}
