//! `compress` — "Data compression using Lempel-Ziv encoding. A 100K
//! file is compressed then uncompressed" (Table 1).
//!
//! Real LZW: a large open-addressed hash table maps (prefix, byte)
//! pairs to dictionary codes during compression; decompression walks
//! the prefix chains and the result is verified against the input.
//! The scattered hash probes over a 512 KB table are what give
//! compress its distinctive TLB behaviour (Table 3: ~80K misses), and
//! it reads the largest input file of the workloads — the disk
//! read-ahead interaction behind its Figure-3 prediction error.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Hash table entries (power of two).
const HASH_SIZE: u32 = 65536;
/// Maximum dictionary codes.
const DICT_SIZE: u32 = 4096;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("compress");
    a.global_label("main");
    a.addiu(SP, SP, -48);
    a.sw(RA, 44, SP);
    for (i, r) in [S0, S1, S2, S3, S4].iter().enumerate() {
        a.sw(*r, 40 - 4 * i as i16, SP);
    }

    a.la(A0, "cz_in_name");
    a.la(A1, "cz_in");
    a.li(A2, 104 * 1024);
    a.jal("__read_all");
    a.nop();
    a.move_(S0, V0); // input length

    // Clear the hash table: key = -1 means empty.
    a.la(T0, "cz_hash");
    a.li(T1, (HASH_SIZE * 8) as i32);
    a.li(T2, -1);
    a.label("cz_clr");
    a.addiu(T1, T1, -8);
    a.addu(T3, T0, T1);
    a.sw(T2, 0, T3);
    a.bne(T1, ZERO, "cz_clr");
    a.nop();

    // ---- Compress ----
    // s1 = input index, s2 = cur code, s3 = next free code,
    // s4 = output halfword count.
    a.la(T6, "cz_in");
    a.lbu(S2, 0, T6);
    a.li(S1, 1);
    a.li(S3, 256);
    a.li(S4, 0);
    a.label("cz_loop");
    a.beq(S1, S0, "cz_flush");
    a.nop();
    a.addu(T0, T6, S1);
    a.lbu(T1, 0, T0); // ch
                      // key = (cur << 8) | ch
    a.sll(T2, S2, 8);
    a.or(T2, T2, T1);
    // h = (key ^ key>>7 ^ key<<5) & (HASH_SIZE-1) — shift/xor hash,
    // as real compress uses (no multiply on the byte path).
    a.srl(T3, T2, 7);
    a.xor(T3, T3, T2);
    a.sll(T4, T2, 5);
    a.xor(T3, T3, T4);
    a.andi(T3, T3, (HASH_SIZE - 1) as u16);
    a.label("cz_probe");
    a.sll(T4, T3, 3);
    a.la(T5, "cz_hash");
    a.addu(T4, T5, T4);
    a.lw(T5, 0, T4); // stored key
    a.beq(T5, T2, "cz_found");
    a.nop();
    a.li(T7, -1);
    a.beq(T5, T7, "cz_miss");
    a.nop();
    a.addiu(T3, T3, 1);
    a.b("cz_probe");
    a.andi(T3, T3, (HASH_SIZE - 1) as u16);
    a.label("cz_found");
    a.lw(S2, 4, T4); // cur = code
    a.b("cz_loop");
    a.addiu(S1, S1, 1);
    a.label("cz_miss");
    // Emit cur as a halfword code.
    a.la(T5, "cz_out");
    a.sll(T7, S4, 1);
    a.addu(T5, T5, T7);
    a.sh(S2, 0, T5);
    a.addiu(S4, S4, 1);
    // Record dictionary entry next = (prefix cur, suffix ch).
    a.slti(T5, S3, DICT_SIZE as i16);
    a.beq(T5, ZERO, "cz_nodict"); // dictionary full: stop growing
    a.nop();
    a.sw(T2, 0, T4); // hash key
    a.sw(S3, 4, T4); // hash code
    a.la(T5, "cz_prefix");
    a.sll(T7, S3, 2);
    a.addu(T5, T5, T7);
    a.sw(S2, 0, T5);
    a.la(T5, "cz_suffix");
    a.addu(T5, T5, T7);
    a.sw(T1, 0, T5);
    a.addiu(S3, S3, 1);
    a.label("cz_nodict");
    a.move_(S2, T1); // cur = ch
    a.b("cz_loop");
    a.addiu(S1, S1, 1);
    a.label("cz_flush");
    // Emit the final code.
    a.la(T5, "cz_out");
    a.sll(T7, S4, 1);
    a.addu(T5, T5, T7);
    a.sh(S2, 0, T5);
    a.addiu(S4, S4, 1);

    // Write the compressed stream to disk.
    a.la(A0, "cz_out_name");
    a.jal("__creat");
    a.nop();
    a.move_(A0, V0);
    a.la(A1, "cz_out");
    a.sll(A2, S4, 1);
    a.jal("__write");
    a.nop();

    // ---- Decompress and verify ----
    // s1 = code index, s2 = output position, s3 = mismatches.
    a.li(S1, 0);
    a.li(S2, 0);
    a.li(S3, 0);
    a.label("cd_loop");
    a.beq(S1, S4, "cd_done");
    a.nop();
    a.la(T0, "cz_out");
    a.sll(T1, S1, 1);
    a.addu(T0, T0, T1);
    a.lhu(T2, 0, T0); // code
                      // Expand the prefix chain onto a byte stack.
    a.la(T3, "cz_stack");
    a.li(T4, 0); // depth
    a.label("cd_chain");
    a.sltiu(T5, T2, 256);
    a.bne(T5, ZERO, "cd_leaf");
    a.nop();
    a.la(T5, "cz_suffix");
    a.sll(T6, T2, 2);
    a.addu(T5, T5, T6);
    a.lw(T7, 0, T5); // suffix byte
    a.addu(T8, T3, T4);
    a.sb(T7, 0, T8);
    a.addiu(T4, T4, 1);
    a.la(T5, "cz_prefix");
    a.addu(T5, T5, T6);
    a.lw(T2, 0, T5); // code = prefix
    a.b("cd_chain");
    a.nop();
    a.label("cd_leaf");
    // Verify the leaf byte then the stacked bytes in reverse.
    a.la(T6, "cz_in");
    a.addu(T7, T6, S2);
    a.lbu(T8, 0, T7);
    a.bne(T8, T2, "cd_mismatch1");
    a.nop();
    a.b("cd_leaf_ok");
    a.nop();
    a.label("cd_mismatch1");
    a.addiu(S3, S3, 1);
    a.label("cd_leaf_ok");
    a.addiu(S2, S2, 1);
    a.label("cd_unstack");
    a.beq(T4, ZERO, "cd_next");
    a.nop();
    a.addiu(T4, T4, -1);
    a.addu(T8, T3, T4);
    a.lbu(T9, 0, T8); // expanded byte
    a.la(T6, "cz_in");
    a.addu(T7, T6, S2);
    a.lbu(T8, 0, T7);
    a.beq(T8, T9, "cd_ok");
    a.nop();
    a.addiu(S3, S3, 1);
    a.label("cd_ok");
    a.b("cd_unstack");
    a.addiu(S2, S2, 1);
    a.label("cd_next");
    a.b("cd_loop");
    a.addiu(S1, S1, 1);
    a.label("cd_done");

    a.move_(A0, S4);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S3); // mismatch count (0 when correct)
    a.lw(RA, 44, SP);
    for (i, r) in [S0, S1, S2, S3, S4].iter().enumerate() {
        a.lw(*r, 40 - 4 * i as i16, SP);
    }
    a.jr(RA);
    a.addiu(SP, SP, 48);

    a.data();
    a.label("cz_in_name");
    a.asciiz("compress.in");
    a.label("cz_out_name");
    a.asciiz("compress.out");
    a.align4();
    a.label("cz_in");
    a.space(104 * 1024);
    a.label("cz_out");
    a.space(128 * 1024);
    a.label("cz_hash");
    a.space(HASH_SIZE * 8);
    a.label("cz_prefix");
    a.space(DICT_SIZE * 4);
    a.label("cz_suffix");
    a.space(DICT_SIZE * 4);
    a.label("cz_stack");
    a.space(4096);
    a.finish()
}

/// Input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![(
        "compress.in".to_string(),
        crate::support::gen_binary(0xc0de, 100 * 1024),
    )]
}
