//! `tomcatv` — "A program that generates a vectorized mesh … written
//! in Fortran" (Table 1).
//!
//! The longest workload. Four N×N double-precision arrays (each
//! larger than the 64 KB cache) are swept repeatedly: a
//! finite-difference pass computes residuals from four-point stencils,
//! and a relaxation pass folds them back. The multi-array stencil
//! traffic makes tomcatv the workload most sensitive to the
//! virtual-to-physical page mapping (§4.4: "system policy in the
//! virtual-to-physical page selection can cause execution time to
//! vary by over 10%").

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Grid dimension.
const N: i32 = 96;
/// Sweeps.
const ITERS: i32 = 24;

/// Program text.
pub fn object() -> Object {
    let row = (N * 8) as i16; // row stride in bytes

    let mut a = Asm::new("tomcatv");
    a.global_label("main");
    a.addiu(SP, SP, -32);
    a.sw(RA, 28, SP);
    a.sw(S0, 24, SP);
    a.sw(S1, 20, SP);
    a.sw(S2, 16, SP);
    a.sw(S3, 12, SP);

    // ---- Initialise x[i,j] = i * 0.01 + j * 0.002, y = transpose ----
    a.li(S0, 0); // j (row)
    a.li_d(F20, 0.01);
    a.li_d(F22, 0.002);
    a.label("tc_init_j");
    a.li(S1, 0); // i (col)
    a.label("tc_init_i");
    a.mtc1(S1, F0);
    a.cvt_d_w(F2, F0);
    a.mul_d(F2, F2, F20); // i*0.01
    a.mtc1(S0, F0);
    a.cvt_d_w(F4, F0);
    a.mul_d(F4, F4, F22); // j*0.002
                          // offset = (j*N + i) * 8
    a.li(T0, N);
    a.mult(S0, T0);
    a.mflo(T1);
    a.addu(T1, T1, S1);
    a.sll(T1, T1, 3);
    a.la(T2, "tc_x");
    a.addu(T3, T2, T1);
    a.add_d(F6, F2, F4);
    a.sdc1(F6, 0, T3);
    a.la(T2, "tc_y");
    a.addu(T3, T2, T1);
    a.sub_d(F6, F2, F4);
    a.sdc1(F6, 0, T3);
    a.addiu(S1, S1, 1);
    a.li(T4, N);
    a.bne(S1, T4, "tc_init_i");
    a.nop();
    a.addiu(S0, S0, 1);
    a.bne(S0, T4, "tc_init_j");
    a.nop();

    // ---- Sweeps ----
    a.li(S3, ITERS);
    a.label("tc_sweep");
    // Residual pass over interior points.
    a.li(S0, 1); // j
    a.label("tc_rj");
    a.li(S1, 1); // i
    a.label("tc_ri");
    // base offset = (j*N + i) * 8
    a.li(T0, N);
    a.mult(S0, T0);
    a.mflo(T1);
    a.addu(T1, T1, S1);
    a.sll(T1, T1, 3);
    a.la(T2, "tc_x");
    a.addu(T3, T2, T1);
    // Stencil loads: E, W, N, S neighbours of x and y.
    a.ldc1(F0, 8, T3); // x[i+1,j]
    a.ldc1(F2, -8, T3); // x[i-1,j]
    a.ldc1(F4, row, T3); // x[i,j+1]
    a.ldc1(F6, -row, T3); // x[i,j-1]
    a.sub_d(F8, F0, F2); // xx
    a.sub_d(F10, F4, F6); // xy
    a.la(T2, "tc_y");
    a.addu(T4, T2, T1);
    a.ldc1(F0, 8, T4);
    a.ldc1(F2, -8, T4);
    a.ldc1(F4, row, T4);
    a.ldc1(F6, -row, T4);
    a.sub_d(F12, F0, F2); // yx
    a.sub_d(F14, F4, F6); // yy
                          // Residuals: rx = xx*yy - xy*yx, ry = xx*yx + xy*yy (jacobian-ish)
    a.mul_d(F16, F8, F14);
    a.mul_d(F18, F10, F12);
    a.sub_d(F16, F16, F18);
    a.la(T2, "tc_rx");
    a.addu(T5, T2, T1);
    a.sdc1(F16, 0, T5);
    a.mul_d(F16, F8, F12);
    a.mul_d(F18, F10, F14);
    a.add_d(F16, F16, F18);
    a.la(T2, "tc_ry");
    a.addu(T5, T2, T1);
    a.sdc1(F16, 0, T5);
    a.addiu(S1, S1, 1);
    a.li(T6, N - 1);
    a.bne(S1, T6, "tc_ri");
    a.nop();
    a.addiu(S0, S0, 1);
    a.bne(S0, T6, "tc_rj");
    a.nop();

    // Relaxation pass: x += w*rx, y += w*ry.
    a.li_d(F24, 0.0625); // relaxation weight
    a.li(S0, 1);
    a.label("tc_xj");
    a.li(S1, 1);
    a.label("tc_xi");
    a.li(T0, N);
    a.mult(S0, T0);
    a.mflo(T1);
    a.addu(T1, T1, S1);
    a.sll(T1, T1, 3);
    a.la(T2, "tc_rx");
    a.addu(T3, T2, T1);
    a.ldc1(F0, 0, T3);
    a.mul_d(F0, F0, F24);
    a.la(T2, "tc_x");
    a.addu(T3, T2, T1);
    a.ldc1(F2, 0, T3);
    a.add_d(F2, F2, F0);
    a.sdc1(F2, 0, T3);
    a.la(T2, "tc_ry");
    a.addu(T3, T2, T1);
    a.ldc1(F0, 0, T3);
    a.mul_d(F0, F0, F24);
    a.la(T2, "tc_y");
    a.addu(T3, T2, T1);
    a.ldc1(F2, 0, T3);
    a.add_d(F2, F2, F0);
    a.sdc1(F2, 0, T3);
    a.addiu(S1, S1, 1);
    a.li(T6, N - 1);
    a.bne(S1, T6, "tc_xi");
    a.nop();
    a.addiu(S0, S0, 1);
    a.bne(S0, T6, "tc_xj");
    a.nop();

    a.addiu(S3, S3, -1);
    a.bne(S3, ZERO, "tc_sweep");
    a.nop();

    // Checksum: bits of x at the grid centre.
    a.la(T0, "tc_x");
    let mid = ((N / 2) * N + N / 2) * 8;
    a.li(T1, mid);
    a.addu(T0, T0, T1);
    a.lw(V0, 0, T0);
    a.srl(A0, V0, 16);
    a.jal("__print_u32");
    a.nop();
    a.la(T0, "tc_x");
    a.li(T1, mid);
    a.addu(T0, T0, T1);
    a.lw(V0, 0, T0);
    a.lw(RA, 28, SP);
    a.lw(S0, 24, SP);
    a.lw(S1, 20, SP);
    a.lw(S2, 16, SP);
    a.lw(S3, 12, SP);
    a.jr(RA);
    a.addiu(SP, SP, 32);

    a.data();
    a.align4();
    for name in ["tc_x", "tc_y", "tc_rx", "tc_ry"] {
        a.label(name);
        a.space((N * N * 8) as u32);
    }
    a.finish()
}

/// No input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![]
}
