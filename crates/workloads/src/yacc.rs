//! `yacc` — "The LR(1) parser-generator run on an 11K grammar"
//! (Table 1).
//!
//! Table-driven LR parsing is yacc's characteristic memory behaviour:
//! tight loops of indirect table loads with a software parse stack.
//! The program runs an SLR(1) parser for the classic expression
//! grammar (E → E+T | T, T → T*F | F, F → (E) | id) over an 11K
//! token stream, counting reductions and accepted expressions.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

const ERR: u32 = 0;
const fn s(n: u32) -> u32 {
    0x1000 | n
}
const fn r(p: u32) -> u32 {
    0x2000 | p
}
const ACC: u32 = 0x3000;

/// The SLR(1) ACTION table: 12 states × 6 terminals
/// (id, '+', '*', '(', ')', '$').
fn action_table() -> [[u32; 6]; 12] {
    let mut t = [[ERR; 6]; 12];
    t[0] = [s(5), ERR, ERR, s(4), ERR, ERR];
    t[1] = [ERR, s(6), ERR, ERR, ERR, ACC];
    t[2] = [ERR, r(2), s(7), ERR, r(2), r(2)];
    t[3] = [ERR, r(4), r(4), ERR, r(4), r(4)];
    t[4] = [s(5), ERR, ERR, s(4), ERR, ERR];
    t[5] = [ERR, r(6), r(6), ERR, r(6), r(6)];
    t[6] = [s(5), ERR, ERR, s(4), ERR, ERR];
    t[7] = [s(5), ERR, ERR, s(4), ERR, ERR];
    t[8] = [ERR, s(6), ERR, ERR, s(11), ERR];
    t[9] = [ERR, r(1), s(7), ERR, r(1), r(1)];
    t[10] = [ERR, r(3), r(3), ERR, r(3), r(3)];
    t[11] = [ERR, r(5), r(5), ERR, r(5), r(5)];
    t
}

/// GOTO table: 12 states × 3 nonterminals (E, T, F).
fn goto_table() -> [[u32; 3]; 12] {
    let mut g = [[0u32; 3]; 12];
    g[0] = [1, 2, 3];
    g[4] = [8, 2, 3];
    g[6] = [0, 9, 3];
    g[7] = [0, 0, 10];
    g
}

/// Production (lhs nonterminal, rhs length), 1-indexed.
const PRODS: [(u32, u32); 7] = [(0, 0), (0, 3), (0, 1), (1, 3), (1, 1), (2, 3), (2, 1)];

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("yacc");
    a.global_label("main");
    a.addiu(SP, SP, -40);
    a.sw(RA, 36, SP);
    a.sw(S0, 32, SP);
    a.sw(S1, 28, SP);
    a.sw(S2, 24, SP);
    a.sw(S3, 20, SP);
    a.sw(S4, 16, SP);

    a.la(A0, "y_in_name");
    a.la(A1, "y_buf");
    a.li(A2, 16 * 1024);
    a.jal("__read_all");
    a.nop();
    a.move_(S0, V0); // token count
    a.li(S1, 0); // token index
    a.li(S2, 0); // reductions
    a.li(S3, 0); // accepted expressions

    a.label("y_restart");
    a.la(S4, "y_stack");
    a.sw(ZERO, 0, S4); // push state 0
    a.label("y_loop");
    a.beq(S1, S0, "y_done");
    a.nop();
    a.la(T0, "y_buf");
    a.addu(T0, T0, S1);
    a.lbu(T1, 0, T0); // token
    a.lw(T2, 0, S4); // current state
                     // action[s*6 + tok]
    a.sll(T3, T2, 1);
    a.sll(T4, T2, 2);
    a.addu(T3, T3, T4);
    a.addu(T3, T3, T1);
    a.sll(T3, T3, 2);
    a.la(T4, "y_action");
    a.addu(T4, T4, T3);
    a.lw(T5, 0, T4);
    a.srl(T6, T5, 12);
    a.li(T7, 1);
    a.beq(T6, T7, "y_shift");
    a.nop();
    a.li(T7, 2);
    a.beq(T6, T7, "y_reduce");
    a.nop();
    a.li(T7, 3);
    a.beq(T6, T7, "y_accept");
    a.nop();
    // Error: skip the token and restart the stack.
    a.addiu(S1, S1, 1);
    a.b("y_restart");
    a.nop();

    a.label("y_shift");
    a.andi(T5, T5, 0xfff);
    a.addiu(S4, S4, 4);
    a.sw(T5, 0, S4);
    a.b("y_loop");
    a.addiu(S1, S1, 1);

    a.label("y_reduce");
    a.andi(T5, T5, 0xfff); // production number
    a.sll(T6, T5, 2);
    a.la(T7, "y_prodlen");
    a.addu(T7, T7, T6);
    a.lw(T8, 0, T7); // rhs length
    a.sll(T8, T8, 2);
    a.subu(S4, S4, T8); // pop
    a.la(T7, "y_prodlhs");
    a.addu(T7, T7, T6);
    a.lw(T9, 0, T7); // lhs
    a.lw(T2, 0, S4); // exposed state
                     // goto[s*3 + lhs]
    a.sll(T3, T2, 1);
    a.addu(T3, T3, T2);
    a.addu(T3, T3, T9);
    a.sll(T3, T3, 2);
    a.la(T4, "y_goto");
    a.addu(T4, T4, T3);
    a.lw(T5, 0, T4);
    a.addiu(S4, S4, 4);
    a.sw(T5, 0, S4);
    a.addiu(S2, S2, 1);
    a.b("y_loop");
    a.nop();

    a.label("y_accept");
    a.addiu(S3, S3, 1);
    a.addiu(S1, S1, 1); // consume the '$'
    a.b("y_restart");
    a.nop();

    a.label("y_done");
    a.move_(A0, S2);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S2);
    a.lw(RA, 36, SP);
    a.lw(S0, 32, SP);
    a.lw(S1, 28, SP);
    a.lw(S2, 24, SP);
    a.lw(S3, 20, SP);
    a.lw(S4, 16, SP);
    a.jr(RA);
    a.addiu(SP, SP, 40);

    a.data();
    a.label("y_in_name");
    a.asciiz("yacc.in");
    a.align4();
    a.label("y_action");
    for row in action_table() {
        for v in row {
            a.word(v);
        }
    }
    a.label("y_goto");
    for row in goto_table() {
        for v in row {
            a.word(v);
        }
    }
    a.label("y_prodlen");
    for (_, len) in PRODS {
        a.word(len);
    }
    a.label("y_prodlhs");
    for (lhs, _) in PRODS {
        a.word(lhs);
    }
    a.label("y_buf");
    a.space(16 * 1024);
    a.label("y_stack");
    a.space(4 * 1024);
    a.finish()
}

/// Generates an 11K stream of valid expression tokens.
pub fn files() -> Vec<(String, Vec<u8>)> {
    // Tokens: id=0, '+'=1, '*'=2, '('=3, ')'=4, '$'=5.
    let mut out = Vec::with_capacity(11 * 1024);
    let mut state = 0x9acc_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    fn factor(out: &mut Vec<u8>, next: &mut dyn FnMut() -> u64, depth: u32) {
        if depth > 0 && next().is_multiple_of(4) {
            out.push(3); // (
            expr(out, next, depth - 1);
            out.push(4); // )
        } else {
            out.push(0); // id
        }
    }
    fn term(out: &mut Vec<u8>, next: &mut dyn FnMut() -> u64, depth: u32) {
        factor(out, next, depth);
        let n = next() % 3;
        for _ in 0..n {
            out.push(2); // *
            factor(out, next, depth);
        }
    }
    fn expr(out: &mut Vec<u8>, next: &mut dyn FnMut() -> u64, depth: u32) {
        term(out, next, depth);
        let n = next() % 3;
        for _ in 0..n {
            out.push(1); // +
            term(out, next, depth);
        }
    }
    while out.len() < 11 * 1024 - 64 {
        expr(&mut out, &mut next, 3);
        out.push(5); // $
    }
    vec![("yacc.in".to_string(), out)]
}
