//! `lisp` — "The 8-queens problem solved in LISP" (Table 1).
//!
//! The signature behaviour of a Lisp system: heap allocation of cons
//! cells, deep recursion, and pointer chasing down lists. Queens are
//! kept as a cons list of packed (col, row) pairs; `safe` walks the
//! list, `solve` recurses, and the whole search is repeated with a
//! fresh heap each time (standing in for the interpreter overhead that
//! made the original a 50-second workload).

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Search repetitions.
const REPEATS: i32 = 15;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("lisp");

    // cons(a0 = car, a1 = cdr) -> v0: bump-allocate an 8-byte cell.
    a.global_label("li_cons");
    a.la(T0, "li_heap_ptr");
    a.lw(T1, 0, T0);
    a.sw(A0, 0, T1);
    a.sw(A1, 4, T1);
    a.move_(V0, T1);
    a.addiu(T1, T1, 8);
    a.jr(RA);
    a.sw(T1, 0, T0);

    // safe(a0 = col, a1 = row, a2 = list) -> v0 (1 = safe).
    a.global_label("li_safe");
    a.label("sf_loop");
    a.beq(A2, ZERO, "sf_yes");
    a.nop();
    a.lw(T0, 0, A2); // packed qcol | qrow<<8
    a.andi(T1, T0, 0xff); // qcol
    a.srl(T2, T0, 8); // qrow
    a.beq(T1, A0, "sf_no"); // same column
    a.nop();
    a.subu(T3, A0, T1); // dcol
    a.subu(T4, A1, T2); // drow (> 0)
    a.beq(T3, T4, "sf_no"); // same diagonal
    a.nop();
    a.subu(T5, ZERO, T3);
    a.beq(T5, T4, "sf_no"); // other diagonal
    a.nop();
    a.b("sf_loop");
    a.lw(A2, 4, A2); // cdr
    a.label("sf_yes");
    a.jr(RA);
    a.li(V0, 1);
    a.label("sf_no");
    a.jr(RA);
    a.li(V0, 0);

    // solve(a0 = row, a1 = list): recursive search.
    a.global_label("li_solve");
    a.li(T0, 8);
    a.bne(A0, T0, "sv_go");
    a.nop();
    // row == 8: a solution.
    a.la(T1, "li_solutions");
    a.lw(T2, 0, T1);
    a.addiu(T2, T2, 1);
    a.jr(RA);
    a.sw(T2, 0, T1);
    a.label("sv_go");
    a.addiu(SP, SP, -24);
    a.sw(RA, 20, SP);
    a.sw(S0, 16, SP);
    a.sw(S1, 12, SP);
    a.sw(S2, 8, SP);
    a.move_(S0, A0); // row
    a.move_(S1, A1); // list
    a.li(S2, 0); // col
    a.label("sv_col");
    a.move_(A0, S2);
    a.move_(A1, S0);
    a.move_(A2, S1);
    a.jal("li_safe");
    a.nop();
    a.beq(V0, ZERO, "sv_next");
    a.nop();
    // cons(col | row<<8, list), recurse.
    a.sll(A0, S0, 8);
    a.or(A0, A0, S2);
    a.move_(A1, S1);
    a.jal("li_cons");
    a.nop();
    a.move_(A1, V0);
    a.addiu(A0, S0, 1);
    a.jal("li_solve");
    a.nop();
    a.label("sv_next");
    a.addiu(S2, S2, 1);
    a.li(T0, 8);
    a.bne(S2, T0, "sv_col");
    a.nop();
    a.lw(RA, 20, SP);
    a.lw(S0, 16, SP);
    a.lw(S1, 12, SP);
    a.lw(S2, 8, SP);
    a.jr(RA);
    a.addiu(SP, SP, 24);

    // main: allocate the heap, run the search REPEATS times.
    a.global_label("main");
    a.addiu(SP, SP, -16);
    a.sw(RA, 12, SP);
    a.sw(S3, 8, SP);
    a.sw(S4, 4, SP);
    a.li(A0, 1 << 20);
    a.jal("__sbrk");
    a.nop();
    a.la(T0, "li_heap_base");
    a.sw(V0, 0, T0);
    a.li(S3, REPEATS);
    a.label("mn_rep");
    // Reset heap and per-run solution count.
    a.la(T0, "li_heap_base");
    a.lw(T1, 0, T0);
    a.la(T0, "li_heap_ptr");
    a.sw(T1, 0, T0);
    a.la(T0, "li_solutions");
    a.sw(ZERO, 0, T0);
    a.li(A0, 0);
    a.li(A1, 0);
    a.jal("li_solve");
    a.nop();
    a.addiu(S3, S3, -1);
    a.bne(S3, ZERO, "mn_rep");
    a.nop();
    a.la(T0, "li_solutions");
    a.lw(S4, 0, T0);
    a.move_(A0, S4);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S4); // 92
    a.lw(RA, 12, SP);
    a.lw(S3, 8, SP);
    a.lw(S4, 4, SP);
    a.jr(RA);
    a.addiu(SP, SP, 16);

    a.data();
    a.align4();
    a.label("li_heap_base");
    a.word(0);
    a.label("li_heap_ptr");
    a.word(0);
    a.label("li_solutions");
    a.word(0);
    a.finish()
}

/// No input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![]
}
