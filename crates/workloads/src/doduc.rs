//! `doduc` — "Monte-Carlo simulation of the time evolution of a
//! nuclear reactor component … written in Fortran" (Table 1).
//!
//! Monte-Carlo means a random-number stream driving data-dependent
//! branches into short floating-point sequences — the opposite block
//! structure from fpppp. Each trial draws from an inline LCG,
//! converts to a double in [0,1), branches three ways (absorption,
//! scattering, fission) with different FP mixes, and accumulates.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Monte-Carlo trials.
const TRIALS: i32 = 250_000;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("doduc");
    a.global_label("main");
    a.addiu(SP, SP, -24);
    a.sw(RA, 20, SP);
    a.sw(S0, 16, SP);
    a.sw(S1, 12, SP);
    a.sw(S2, 8, SP);

    a.li(S0, TRIALS);
    a.li(S1, 12345); // LCG state
    a.li(S2, 0); // fission count
                 // FP constants.
    a.li_d(F20, 0.0); // energy accumulator
    a.li_d(F22, 4.656612873077393e-10); // 2^-31
    a.li_d(F24, 1.021); // scatter gain
    a.li_d(F26, 0.735); // absorption loss
    a.li_d(F28, 0.0); // flux accumulator

    a.label("dd_trial");
    // Inline LCG: s = s*1103515245 + 12345.
    a.li(T0, 1103515245);
    a.multu(S1, T0);
    a.mflo(S1);
    a.li(T0, 12345);
    a.addu(S1, S1, T0);
    a.srl(T1, S1, 1); // 31-bit draw
                      // u = draw * 2^-31 (double in [0,1)).
    a.mtc1(T1, F0);
    a.cvt_d_w(F2, F0);
    a.mul_d(F2, F2, F22);
    // Three-way branch on the draw.
    a.li(T2, 0x2666_6666); // ~0.30 * 2^31
    a.sltu(T3, T1, T2);
    a.bne(T3, ZERO, "dd_absorb");
    a.nop();
    a.li(T2, 0x5999_9999); // ~0.70 * 2^31
    a.sltu(T3, T1, T2);
    a.bne(T3, ZERO, "dd_scatter");
    a.nop();
    // Fission: energy += u * u + 0.5; count it.
    a.mul_d(F4, F2, F2);
    a.li_d(F6, 0.5);
    a.add_d(F4, F4, F6);
    a.add_d(F20, F20, F4);
    a.b("dd_next");
    a.addiu(S2, S2, 1);
    a.label("dd_absorb");
    // Absorption: flux -= u * loss.
    a.mul_d(F4, F2, F26);
    a.sub_d(F28, F28, F4);
    a.b("dd_next");
    a.nop();
    a.label("dd_scatter");
    // Scattering: energy = energy*gain - u; one divide now and then.
    a.mul_d(F4, F20, F24);
    a.sub_d(F4, F4, F2);
    a.andi(T4, T1, 63);
    a.bne(T4, ZERO, "dd_nodiv");
    a.nop();
    a.li_d(F6, 1.0001);
    a.div_d(F4, F4, F6); // keep the accumulator bounded
    a.label("dd_nodiv");
    a.mov_d(F20, F4);
    a.label("dd_next");
    // Periodically store state to the history array.
    a.andi(T5, S0, 127);
    a.bne(T5, ZERO, "dd_nostore");
    a.nop();
    a.la(T6, "dd_hist");
    a.andi(T7, S0, 0x3ff8);
    a.addu(T6, T6, T7);
    a.sdc1(F20, 0, T6);
    a.label("dd_nostore");
    a.addiu(S0, S0, -1);
    a.bne(S0, ZERO, "dd_trial");
    a.nop();

    a.move_(A0, S2);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S2);
    a.lw(RA, 20, SP);
    a.lw(S0, 16, SP);
    a.lw(S1, 12, SP);
    a.lw(S2, 8, SP);
    a.jr(RA);
    a.addiu(SP, SP, 24);

    a.data();
    a.align4();
    a.label("dd_hist");
    a.space(16 * 1024 + 8);
    a.finish()
}

/// No input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![]
}
