//! Shared runtime support for the workloads: program startup and a
//! small library of leaf routines (I/O wrappers, memory ops, a
//! deterministic random-number generator, decimal printing).
//!
//! Everything here is ordinary instrumentable user code — unlike the
//! trace runtime, it gets rewritten by epoxie like the rest of the
//! workload.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;
use wrl_trace::layout::sys;

/// Builds the startup object: sets up the stack, calls `main`, and
/// exits with its return value.
pub fn crt0() -> Object {
    let mut a = Asm::new("crt0");
    a.global_label("__start");
    a.la(SP, "__stack_end");
    a.jal("main");
    a.nop();
    a.move_(A0, V0);
    a.li(V0, sys::EXIT as i32);
    a.syscall(0);
    // Not reached.
    a.label("__hang");
    a.b("__hang");
    a.nop();
    a.data();
    a.label("__stack");
    a.space(32 * 1024);
    a.label("__stack_end");
    a.word(0);
    a.finish()
}

/// Builds the support library object (`libw3k`).
///
/// Exports: `__open`, `__creat`, `__read`, `__write`, `__close`,
/// `__sbrk`, `__puts`, `__print_u32`, `__memcpy`, `__memset`,
/// `__strlen`, `__read_all`, `__rand` / `__srand`.
pub fn libw3k() -> Object {
    let mut a = Asm::new("libw3k");

    // Syscall wrappers: args already in a0..a2.
    for (name, num) in [
        ("__open", sys::OPEN),
        ("__creat", sys::CREAT),
        ("__read", sys::READ),
        ("__close", sys::CLOSE),
        ("__sbrk", sys::SBRK),
        ("__getpid", sys::GETPID),
        ("__yield", sys::YIELD),
        ("__trace_ctl", sys::TRACE_CTL),
        ("__spawn", sys::SPAWN),
    ] {
        a.global_label(name);
        a.li(V0, num as i32);
        a.syscall(0);
        a.jr(RA);
        a.nop();
    }

    // __write loops over partial writes (the kernels transfer at most
    // one block — or one IPC message — per call).
    a.global_label("__write");
    a.move_(T0, A0);
    a.move_(T1, A1);
    a.move_(T2, A2);
    a.li(T3, 0); // total
    a.label("w_loop");
    a.blez(T2, "w_done");
    a.nop();
    a.move_(A0, T0);
    a.move_(A1, T1);
    a.move_(A2, T2);
    a.li(V0, sys::WRITE as i32);
    a.syscall(0);
    a.blez(V0, "w_done");
    a.nop();
    a.addu(T1, T1, V0);
    a.subu(T2, T2, V0);
    a.b("w_loop");
    a.addu(T3, T3, V0);
    a.label("w_done");
    a.jr(RA);
    a.move_(V0, T3);

    // __strlen(a0) -> v0
    a.global_label("__strlen");
    a.move_(V0, ZERO);
    a.label("sl_loop");
    a.addu(T0, A0, V0);
    a.lbu(T1, 0, T0);
    a.beq(T1, ZERO, "sl_done");
    a.nop();
    a.b("sl_loop");
    a.addiu(V0, V0, 1);
    a.label("sl_done");
    a.jr(RA);
    a.nop();

    // __puts(a0): write(1, a0, strlen(a0))
    a.global_label("__puts");
    a.addiu(SP, SP, -16);
    a.sw(RA, 12, SP);
    a.sw(A0, 8, SP);
    a.jal("__strlen");
    a.nop();
    a.move_(A2, V0);
    a.lw(A1, 8, SP);
    a.li(A0, 1);
    a.jal("__write");
    a.nop();
    a.lw(RA, 12, SP);
    a.jr(RA);
    a.addiu(SP, SP, 16);

    // __print_u32(a0): decimal + newline to fd 1.
    a.global_label("__print_u32");
    a.addiu(SP, SP, -32);
    a.sw(RA, 28, SP);
    // Build digits backwards into a 16-byte buffer on the stack.
    a.addiu(T0, SP, 16); // write pointer (grows down from SP+16)
    a.li(T1, 10);
    a.sb(T1, 0, T0); // trailing '\n'
    a.move_(T2, A0);
    a.label("pu_loop");
    a.divu(T2, T1);
    a.mflo(T3); // quotient
    a.mfhi(T4); // remainder
    a.addiu(T4, T4, 48); // '0' + r
    a.addiu(T0, T0, -1);
    a.sb(T4, 0, T0);
    a.move_(T2, T3);
    a.bne(T2, ZERO, "pu_loop");
    a.nop();
    // write(1, T0, end - T0)
    a.addiu(T5, SP, 17); // one past the newline
    a.subu(A2, T5, T0);
    a.move_(A1, T0);
    a.li(A0, 1);
    a.jal("__write");
    a.nop();
    a.lw(RA, 28, SP);
    a.jr(RA);
    a.addiu(SP, SP, 32);

    // __memcpy(a0 dst, a1 src, a2 len) — byte loop.
    a.global_label("__memcpy");
    a.beq(A2, ZERO, "mc_done");
    a.move_(T0, ZERO);
    a.label("mc_loop");
    a.addu(T1, A1, T0);
    a.lbu(T2, 0, T1);
    a.addu(T3, A0, T0);
    a.sb(T2, 0, T3);
    a.addiu(T0, T0, 1);
    a.bne(T0, A2, "mc_loop");
    a.nop();
    a.label("mc_done");
    a.jr(RA);
    a.nop();

    // __memset(a0 dst, a1 byte, a2 len)
    a.global_label("__memset");
    a.beq(A2, ZERO, "ms_done");
    a.move_(T0, ZERO);
    a.label("ms_loop");
    a.addu(T1, A0, T0);
    a.sb(A1, 0, T1);
    a.addiu(T0, T0, 1);
    a.bne(T0, A2, "ms_loop");
    a.nop();
    a.label("ms_done");
    a.jr(RA);
    a.nop();

    // __read_all(a0 path, a1 buf, a2 maxlen) -> total read (-1 fail).
    a.global_label("__read_all");
    a.addiu(SP, SP, -32);
    a.sw(RA, 28, SP);
    a.sw(S0, 24, SP); // fd
    a.sw(S1, 20, SP); // buf
    a.sw(S2, 16, SP); // remaining
    a.sw(S3, 12, SP); // total
    a.move_(S1, A1);
    a.move_(S2, A2);
    a.move_(S3, ZERO);
    a.jal("__open");
    a.nop();
    a.bltz(V0, "ra_fail");
    a.move_(S0, V0);
    a.label("ra_loop");
    a.blez(S2, "ra_done");
    a.nop();
    a.move_(A0, S0);
    a.move_(A1, S1);
    a.move_(A2, S2);
    a.jal("__read");
    a.nop();
    a.blez(V0, "ra_done");
    a.nop();
    a.addu(S1, S1, V0);
    a.subu(S2, S2, V0);
    a.b("ra_loop");
    a.addu(S3, S3, V0);
    a.label("ra_done");
    a.move_(A0, S0);
    a.jal("__close");
    a.nop();
    a.move_(V0, S3);
    a.label("ra_out");
    a.lw(RA, 28, SP);
    a.lw(S0, 24, SP);
    a.lw(S1, 20, SP);
    a.lw(S2, 16, SP);
    a.lw(S3, 12, SP);
    a.jr(RA);
    a.addiu(SP, SP, 32);
    a.label("ra_fail");
    a.b("ra_out");
    a.li(V0, -1);

    // __srand(a0): seed the LCG. __rand() -> v0 (31-bit).
    a.global_label("__srand");
    a.la(T0, "__rand_state");
    a.jr(RA);
    a.sw(A0, 0, T0);
    a.global_label("__rand");
    a.la(T0, "__rand_state");
    a.lw(T1, 0, T0);
    a.li(T2, 1103515245);
    a.multu(T1, T2);
    a.mflo(T1);
    a.li(T3, 12345);
    a.addu(T1, T1, T3);
    a.sw(T1, 0, T0);
    a.srl(V0, T1, 1); // 31-bit result
    a.jr(RA);
    a.nop();
    a.data();
    a.align4();
    a.label("__rand_state");
    a.word(1);

    a.finish()
}

/// Deterministic pseudo-text generator for input files (host side).
pub fn gen_text(seed: u64, len: usize) -> Vec<u8> {
    const WORDS: &[&str] = &[
        "the", "and", "for", "system", "trace", "cache", "kernel", "address", "buffer", "page",
        "miss", "time", "data", "user", "with", "from", "that", "this", "memory", "epoxie",
    ];
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(len + 16);
    let mut col = 0;
    while out.len() < len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let w = WORDS[(s % WORDS.len() as u64) as usize];
        out.extend_from_slice(w.as_bytes());
        col += w.len() + 1;
        if col > 60 {
            out.push(b'\n');
            col = 0;
        } else {
            out.push(b' ');
        }
    }
    out.truncate(len);
    if let Some(last) = out.last_mut() {
        *last = b'\n';
    }
    out
}

/// Deterministic binary generator (host side), with enough repetition
/// to be compressible.
pub fn gen_binary(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        // Repeat short runs so LZW finds matches.
        let b = (s % 17) as u8 + b'a';
        let run = (s >> 8) % 6 + 1;
        for _ in 0..run {
            if out.len() < len {
                out.push(b);
            }
        }
    }
    out
}
