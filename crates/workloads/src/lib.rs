//! The twelve Table-1 workloads, as W3K programs.
//!
//! Each module implements one workload of the paper's experimental
//! suite (Table 1) as real assembly with the algorithm's
//! characteristic memory behaviour: sed's stream edit, egrep's scan
//! loops, yacc's LR-table walks, gcc's large multi-phase text,
//! compress's LZW hash sprawl, espresso's cube bitsets, lisp's cons
//! recursion, eqntott's TLB-thrashing truth table, fpppp's huge
//! straight-line FP blocks, doduc's branchy Monte-Carlo FP, liv's
//! store-per-iteration Livermore loop, and tomcatv's multi-array mesh
//! sweeps.
//!
//! Inputs are scaled so that the full validation matrix runs in
//! minutes (see DESIGN.md); the *relative* ordering of run times and
//! the characteristic event mixes (TLB misses, write-buffer pressure,
//! I/O) are preserved.

pub mod compress;
pub mod doduc;
pub mod egrep;
pub mod eqntott;
pub mod espresso;
pub mod fpppp;
pub mod gcc;
pub mod hostenv;
pub mod lisp;
pub mod liv;
pub mod sed;
pub mod support;
pub mod tomcatv;
pub mod yacc;

pub use hostenv::HostEnv;

use wrl_isa::link::{link, Layout, Linked};
use wrl_isa::Object;
use wrl_machine::{Config, Machine, StopEvent};
use wrl_trace::layout::trapcode;

/// One experimental workload.
pub struct Workload {
    /// Short name (Table 1).
    pub name: &'static str,
    /// The Table-1 description.
    pub description: &'static str,
    /// Instruction budget for an untraced run (safety cutoff).
    pub max_insts: u64,
    /// Program objects: the workload itself plus crt0 and libw3k.
    pub objects: Vec<Object>,
    /// Input files placed on disk (or in the host FS for bare runs).
    pub files: Vec<(String, Vec<u8>)>,
}

fn with_rt(main_obj: Object) -> Vec<Object> {
    vec![main_obj, support::crt0(), support::libw3k()]
}

/// Returns all twelve workloads in Table-1 order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "sed",
            description: "The UNIX stream editor run three times over the same 17K input file.",
            max_insts: 4_000_000,
            objects: with_rt(sed::object()),
            files: sed::files(),
        },
        Workload {
            name: "egrep",
            description: "The UNIX pattern search program run three times over a 27K input file.",
            max_insts: 8_000_000,
            objects: with_rt(egrep::object()),
            files: egrep::files(),
        },
        Workload {
            name: "yacc",
            description: "The LR(1) parser-generator run on an 11K grammar.",
            max_insts: 8_000_000,
            objects: with_rt(yacc::object()),
            files: yacc::files(),
        },
        Workload {
            name: "gcc",
            description: "The GNU C compiler translating a 17K (preprocessed) source file \
                          into optimized Sun-3 assembly code.",
            max_insts: 16_000_000,
            objects: with_rt(gcc::object()),
            files: gcc::files(),
        },
        Workload {
            name: "compress",
            description: "Data compression using Lempel-Ziv encoding. A 100K file is \
                          compressed then uncompressed.",
            max_insts: 20_000_000,
            objects: with_rt(compress::object()),
            files: compress::files(),
        },
        Workload {
            name: "espresso",
            description: "A program that minimizes boolean functions run on a 30K input file.",
            max_insts: 24_000_000,
            objects: with_rt(espresso::object()),
            files: espresso::files(),
        },
        Workload {
            name: "lisp",
            description: "The 8-queens problem solved in LISP.",
            max_insts: 60_000_000,
            objects: with_rt(lisp::object()),
            files: lisp::files(),
        },
        Workload {
            name: "eqntott",
            description: "A program that converts boolean equations to truth tables using \
                          a 1390 byte input file.",
            max_insts: 40_000_000,
            objects: with_rt(eqntott::object()),
            files: eqntott::files(),
        },
        Workload {
            name: "fpppp",
            description: "A program that does quantum chemistry analysis. This program is \
                          written in Fortran.",
            max_insts: 30_000_000,
            objects: with_rt(fpppp::object()),
            files: fpppp::files(),
        },
        Workload {
            name: "doduc",
            description: "Monte-Carlo simulation of the time evolution of a nuclear reactor \
                          component described by 8K input file. This program is written in \
                          Fortran.",
            max_insts: 40_000_000,
            objects: with_rt(doduc::object()),
            files: doduc::files(),
        },
        Workload {
            name: "liv",
            description: "The Livermore Loops benchmark.",
            max_insts: 8_000_000,
            objects: with_rt(liv::object()),
            files: liv::files(),
        },
        Workload {
            name: "tomcatv",
            description: "A program that generates a vectorized mesh. This program is \
                          written in Fortran.",
            max_insts: 80_000_000,
            objects: with_rt(tomcatv::object()),
            files: tomcatv::files(),
        },
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Links a workload's objects with the user layout.
pub fn link_user(objects: &[Object]) -> Linked {
    link(objects, Layout::user(), "__start").expect("workload links")
}

/// Result of a bare (kernel-less) workload run.
pub struct BareRun {
    /// The machine after the run.
    pub machine: Machine,
    /// The host environment (files, console output, exit code).
    pub env: HostEnv,
    /// Instructions retired.
    pub insts: u64,
}

/// Runs a workload to completion on a bare machine with host-emulated
/// syscalls.
///
/// # Panics
///
/// Panics if the run does not exit within the budget or stops
/// abnormally — workload tests rely on this.
pub fn run_bare(w: &Workload) -> BareRun {
    let linked = link_user(&w.objects);
    let mut m = Machine::new(Config::bare(), vec![]);
    m.load_executable(&linked.exe);
    m.set_pc(linked.exe.entry);
    let mut env = HostEnv::new(w.files.iter().cloned());
    env.brk = linked.exe.brk();
    let mut budget = w.max_insts;
    loop {
        let before = m.counters.insts();
        let ev = m.run(budget);
        budget = budget.saturating_sub(m.counters.insts() - before);
        match ev {
            StopEvent::Syscall(code) if code == trapcode::SYSCALL_ABI => {
                if !env.handle(&mut m) {
                    break;
                }
            }
            StopEvent::Budget => panic!("{}: instruction budget exhausted", w.name),
            other => panic!("{}: unexpected stop {other:?}", w.name),
        }
        if budget == 0 {
            panic!("{}: instruction budget exhausted", w.name);
        }
    }
    let insts = m.counters.insts();
    BareRun {
        machine: m,
        env,
        insts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_is_the_papers_twelve() {
        let ws = all();
        assert_eq!(ws.len(), 12);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        let mut want = vec![
            "compress", "doduc", "egrep", "eqntott", "espresso", "fpppp", "gcc", "lisp", "liv",
            "sed", "tomcatv", "yacc",
        ];
        want.sort_unstable();
        assert_eq!(names, want);
        for w in &ws {
            assert!(!w.description.is_empty(), "{} lacks a description", w.name);
            assert!(w.max_insts > 0);
            assert!(w.objects.len() >= 2, "{}: crt0 + code expected", w.name);
        }
    }

    #[test]
    fn by_name_round_trips_and_rejects_unknown() {
        for w in all() {
            assert_eq!(by_name(w.name).unwrap().name, w.name);
        }
        assert!(by_name("dhrystone").is_none());
    }

    #[test]
    fn input_generators_are_deterministic() {
        assert_eq!(support::gen_text(7, 4096), support::gen_text(7, 4096));
        assert_ne!(support::gen_text(7, 4096), support::gen_text(8, 4096));
        let b = support::gen_binary(3, 1000);
        assert_eq!(b.len(), 1000);
        assert_eq!(b, support::gen_binary(3, 1000));
    }
}
