//! `eqntott` — "A program that converts boolean equations to truth
//! tables using a 1390 byte input file" (Table 1).
//!
//! eqntott's notorious property — by far the highest TLB miss counts
//! in Table 3 — comes from building a truth table far larger than the
//! TLB reach with a scattered store pattern. The boolean expression
//! (read from the small input file) is evaluated for every input
//! combination; results are stored with a multiplicative hash scatter
//! across a 2 MB table, then verified in a sequential pass.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Number of input combinations evaluated.
const N: i32 = 393_216;
/// Truth-table size (bytes, power of two).
const TABLE: i32 = 2 << 20;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("eqntott");
    a.global_label("main");
    a.addiu(SP, SP, -32);
    a.sw(RA, 28, SP);
    a.sw(S0, 24, SP);
    a.sw(S1, 20, SP);
    a.sw(S2, 16, SP);
    a.sw(S3, 12, SP);

    // Read the equation description (used to pick the operator mix).
    a.la(A0, "eq_in_name");
    a.la(A1, "eq_buf");
    a.li(A2, 2048);
    a.jal("__read_all");
    a.nop();
    // Fold the input into an operator-select mask.
    a.move_(T0, V0);
    a.li(S3, 0);
    a.la(T1, "eq_buf");
    a.label("eq_fold");
    a.blez(T0, "eq_fold_done");
    a.nop();
    a.addiu(T0, T0, -1);
    a.addu(T2, T1, T0);
    a.lbu(T3, 0, T2);
    a.xor(S3, S3, T3);
    a.b("eq_fold");
    a.sll(S3, S3, 1);
    a.label("eq_fold_done");

    // The truth table.
    a.li(A0, TABLE);
    a.jal("__sbrk");
    a.nop();
    a.move_(S0, V0); // table base

    // Evaluate all N combinations.
    a.li(S1, 0); // i
    a.li(S2, 0); // ones count
    a.label("eq_eval");
    // v = boolean expression over the bits of i, flavoured by S3.
    a.srl(T0, S1, 1);
    a.xor(T0, T0, S1); // x1 = i ^ (i>>1)
    a.srl(T1, S1, 3);
    a.and(T0, T0, T1); // x2 = x1 & (i>>3)
    a.srl(T1, S1, 7);
    a.or(T0, T0, T1); // x3 = x2 | (i>>7)
    a.srl(T1, S1, 11);
    a.xor(T0, T0, T1);
    a.xor(T0, T0, S3); // mix in the equation flavour
    a.srl(T1, T0, 2);
    a.and(T0, T0, T1);
    a.andi(T0, T0, 1); // v
    a.addu(S2, S2, T0);
    // Scatter index: (i * 40503) & (TABLE-1).
    a.li(T1, 40503);
    a.multu(S1, T1);
    a.mflo(T1);
    a.li(T2, TABLE - 1);
    a.and(T1, T1, T2);
    a.addu(T1, S0, T1);
    a.sb(T0, 0, T1);
    a.addiu(S1, S1, 1);
    a.li(T3, N);
    a.bne(S1, T3, "eq_eval");
    a.nop();

    // Sequential verification pass over a sample of the table.
    a.li(S1, 0);
    a.li(T9, 0); // checksum
    a.label("eq_sum");
    a.addu(T0, S0, S1);
    a.lbu(T1, 0, T0);
    a.addu(T9, T9, T1);
    a.addiu(S1, S1, 64);
    a.li(T2, TABLE);
    a.bne(S1, T2, "eq_sum");
    a.nop();

    a.addu(S2, S2, T9);
    a.move_(A0, S2);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S2);
    a.lw(RA, 28, SP);
    a.lw(S0, 24, SP);
    a.lw(S1, 20, SP);
    a.lw(S2, 16, SP);
    a.lw(S3, 12, SP);
    a.jr(RA);
    a.addiu(SP, SP, 32);

    a.data();
    a.label("eq_in_name");
    a.asciiz("eqntott.in");
    a.align4();
    a.label("eq_buf");
    a.space(2048);
    a.finish()
}

/// Input files: a 1390-byte equation description, as in Table 1.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![(
        "eqntott.in".to_string(),
        crate::support::gen_text(0xe161, 1390),
    )]
}
