//! `espresso` — "A program that minimizes boolean functions run on a
//! 30K input file" (Table 1).
//!
//! Two-level logic minimisation is dominated by pairwise cube
//! operations on wide bitsets: intersection, containment tests and
//! literal counting. Cubes are 256-bit vectors (8 words) built from
//! the input file; the quadratic covering pass marks contained cubes
//! and counts the surviving cover, with Kernighan popcounts supplying
//! the branchy bit-twiddling inner loops.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Number of cubes.
const N_CUBES: u32 = 96;
/// Words per cube.
const CUBE_WORDS: u32 = 8;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("espresso");
    a.global_label("main");
    a.addiu(SP, SP, -48);
    a.sw(RA, 44, SP);
    for (i, r) in [S0, S1, S2, S3, S4].iter().enumerate() {
        a.sw(*r, 40 - 4 * i as i16, SP);
    }

    a.la(A0, "es_in_name");
    a.la(A1, "es_buf");
    a.li(A2, 32 * 1024);
    a.jal("__read_all");
    a.nop();
    a.move_(S0, V0);

    // Build cubes from input bytes: cube[i][w] = mix of input words.
    a.li(S1, 0); // cube index
    a.la(T6, "es_buf");
    a.la(T7, "es_cubes");
    a.label("es_build");
    a.li(T0, N_CUBES as i32);
    a.beq(S1, T0, "es_build_done");
    a.nop();
    a.li(S2, 0); // word index
    a.label("es_bw");
    // src offset = (i * 131 + w * 17) mod (len-4), byte-assembled.
    a.li(T0, 131);
    a.multu(S1, T0);
    a.mflo(T1);
    a.sll(T2, S2, 4);
    a.addu(T1, T1, T2);
    a.addu(T1, T1, S2);
    a.addiu(T3, S0, -4);
    a.divu(T1, T3);
    a.mfhi(T1);
    a.addu(T2, T6, T1);
    a.lbu(T3, 0, T2);
    a.lbu(T4, 1, T2);
    a.sll(T4, T4, 8);
    a.or(T3, T3, T4);
    a.lbu(T4, 2, T2);
    a.sll(T4, T4, 16);
    a.or(T3, T3, T4);
    a.lbu(T4, 3, T2);
    a.sll(T4, T4, 24);
    a.or(T3, T3, T4);
    // dst = cubes + (i*8 + w)*4
    a.sll(T4, S1, 3);
    a.addu(T4, T4, S2);
    a.sll(T4, T4, 2);
    a.addu(T4, T7, T4);
    a.sw(T3, 0, T4);
    a.addiu(S2, S2, 1);
    a.li(T0, CUBE_WORDS as i32);
    a.bne(S2, T0, "es_bw");
    a.nop();
    a.b("es_build");
    a.addiu(S1, S1, 1);
    a.label("es_build_done");

    // Covering pass: for each pair (i, j != i), test whether cube i is
    // contained in cube j ((i AND j) == i) and accumulate the
    // popcount of the intersection.
    a.li(S1, 0); // i
    a.li(S3, 0); // contained count
    a.li(S4, 0); // popcount accumulator
    a.label("es_i");
    a.li(T0, N_CUBES as i32);
    a.beq(S1, T0, "es_pairs_done");
    a.nop();
    a.li(S2, 0); // j
    a.label("es_j");
    a.li(T0, N_CUBES as i32);
    a.beq(S2, T0, "es_j_done");
    a.nop();
    a.beq(S1, S2, "es_j_next");
    a.nop();
    // Walk the 8 words.
    a.li(T0, 0); // word index
    a.li(T1, 1); // contained flag
    a.label("es_w");
    a.sll(T2, S1, 3);
    a.addu(T2, T2, T0);
    a.sll(T2, T2, 2);
    a.addu(T2, T7, T2);
    a.lw(T3, 0, T2); // a = cube[i][w]
    a.sll(T2, S2, 3);
    a.addu(T2, T2, T0);
    a.sll(T2, T2, 2);
    a.addu(T2, T7, T2);
    a.lw(T4, 0, T2); // b = cube[j][w]
    a.and(T5, T3, T4); // intersection
    a.bne(T5, T3, "es_not_cont");
    a.nop();
    a.b("es_cont_ok");
    a.nop();
    a.label("es_not_cont");
    a.li(T1, 0);
    a.label("es_cont_ok");
    // Kernighan popcount of the intersection word.
    a.label("es_pc");
    a.beq(T5, ZERO, "es_pc_done");
    a.nop();
    a.addiu(T8, T5, -1);
    a.and(T5, T5, T8);
    a.b("es_pc");
    a.addiu(S4, S4, 1);
    a.label("es_pc_done");
    a.addiu(T0, T0, 1);
    a.li(T2, CUBE_WORDS as i32);
    a.bne(T0, T2, "es_w");
    a.nop();
    a.beq(T1, ZERO, "es_j_next");
    a.nop();
    a.addiu(S3, S3, 1); // cube i covered by cube j
    a.label("es_j_next");
    a.b("es_j");
    a.addiu(S2, S2, 1);
    a.label("es_j_done");
    a.b("es_i");
    a.addiu(S1, S1, 1);
    a.label("es_pairs_done");

    a.move_(A0, S4);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S4);
    a.lw(RA, 44, SP);
    for (i, r) in [S0, S1, S2, S3, S4].iter().enumerate() {
        a.lw(*r, 40 - 4 * i as i16, SP);
    }
    a.jr(RA);
    a.addiu(SP, SP, 48);

    a.data();
    a.label("es_in_name");
    a.asciiz("espresso.in");
    a.align4();
    a.label("es_buf");
    a.space(32 * 1024);
    a.label("es_cubes");
    a.space(N_CUBES * CUBE_WORDS * 4);
    a.finish()
}

/// Input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![(
        "espresso.in".to_string(),
        crate::support::gen_binary(0xe59, 30 * 1024),
    )]
}
