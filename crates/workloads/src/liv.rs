//! `liv` — "The Livermore Loops benchmark" (Table 1).
//!
//! Livermore kernels 1, 5 and 12: the hydro fragment `x[k] = q +
//! y[k]*(r*z[k+10] + t*z[k+11])` (vectorizable, store-heavy),
//! tri-diagonal elimination `x[i] = z[i]*(y[i] - x[i-1])` (a serial
//! recurrence, pure FP-latency exposure) and first difference
//! `x[k] = y[k+1] - y[k]`. A store every few floating-point
//! operations is the worst write-buffer behaviour of the workloads,
//! and the FP latency it overlaps with is exactly the unmodeled
//! interaction behind liv's Figure-3 prediction error.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Vector length.
const N: i32 = 1100;
/// Outer repetitions.
const OUTER: i32 = 40;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("liv");
    a.global_label("main");
    a.addiu(SP, SP, -24);
    a.sw(RA, 20, SP);
    a.sw(S0, 16, SP);
    a.sw(S1, 12, SP);

    // Initialise y and z: y[k] = 1/(k+2), z[k] = (k mod 17) * 0.125.
    a.li(S0, 0);
    a.la(T6, "lv_y");
    a.la(T7, "lv_z");
    a.li_d(F20, 1.0);
    a.li_d(F22, 0.125);
    a.label("lv_init");
    a.addiu(T0, S0, 2);
    a.mtc1(T0, F0);
    a.cvt_d_w(F2, F0);
    a.div_d(F4, F20, F2); // 1/(k+2)
    a.sll(T1, S0, 3);
    a.addu(T2, T6, T1);
    a.sdc1(F4, 0, T2);
    // z[k]
    a.li(T3, 17);
    a.divu(S0, T3);
    a.mfhi(T4);
    a.mtc1(T4, F0);
    a.cvt_d_w(F2, F0);
    a.mul_d(F4, F2, F22);
    a.addu(T2, T7, T1);
    a.sdc1(F4, 0, T2);
    a.addiu(S0, S0, 1);
    a.li(T5, N + 16);
    a.bne(S0, T5, "lv_init");
    a.nop();

    // Kernel 1.
    a.li_d(F24, 0.5); // q
    a.li_d(F26, 0.31); // r
    a.li_d(F28, 0.17); // t
    a.li(S1, OUTER);
    a.label("lv_outer");
    a.li(S0, 0); // k
    a.la(T6, "lv_y");
    a.la(T7, "lv_z");
    a.la(T8, "lv_x");
    // Unrolled by four, vectorizer-style: the four results are
    // stored in one burst, which is what gives liv the worst
    // write-buffer behaviour of the workloads.
    a.label("lv_inner");
    a.sll(T0, S0, 3);
    a.addu(T1, T7, T0); // &z[k]
    a.addu(T2, T6, T0); // &y[k]
    let results = [F4, F6, F8, F10];
    for (u, res) in results.iter().enumerate() {
        let off = (u * 8) as i16;
        a.ldc1(F0, 80 + off, T1); // z[k+u+10]
        a.ldc1(F2, 88 + off, T1); // z[k+u+11]
        a.mul_d(F12, F0, F26); // r*z[k+u+10]
        a.mul_d(F14, F2, F28); // t*z[k+u+11]
        a.add_d(F12, F12, F14);
        a.ldc1(F16, off, T2); // y[k+u]
        a.mul_d(F12, F12, F16);
        a.add_d(*res, F12, F24); // q + ...
    }
    a.addu(T3, T8, T0); // &x[k]
    for (u, res) in results.iter().enumerate() {
        a.sdc1(*res, (u * 8) as i16, T3); // burst of 8 word stores
    }
    a.addiu(S0, S0, 4);
    a.li(T4, N);
    a.bne(S0, T4, "lv_inner");
    a.nop();
    // ---- Kernel 5 (tri-diagonal elimination): a serial recurrence,
    // the opposite dependence structure from kernel 1. ----
    a.li(S0, 1);
    a.la(T6, "lv_y");
    a.la(T7, "lv_z");
    a.la(T8, "lv_x");
    a.ldc1(F8, 0, T8); // x[0]
    a.label("lv_k5");
    a.sll(T0, S0, 3);
    a.addu(T1, T6, T0);
    a.ldc1(F0, 0, T1); // y[i]
    a.sub_d(F0, F0, F8); // y[i] - x[i-1]
    a.addu(T1, T7, T0);
    a.ldc1(F2, 0, T1); // z[i]
    a.mul_d(F8, F2, F0); // x[i] = z[i]*(y[i]-x[i-1])
    a.addu(T1, T8, T0);
    a.sdc1(F8, 0, T1);
    a.addiu(S0, S0, 1);
    a.li(T4, N);
    a.bne(S0, T4, "lv_k5");
    a.nop();

    // ---- Kernel 12 (first difference): x[k] = y[k+1] - y[k]. ----
    a.li(S0, 0);
    a.label("lv_k12");
    a.sll(T0, S0, 3);
    a.addu(T1, T6, T0);
    a.ldc1(F0, 8, T1); // y[k+1]
    a.ldc1(F2, 0, T1); // y[k]
    a.sub_d(F4, F0, F2);
    a.addu(T1, T8, T0);
    a.sdc1(F4, 0, T1);
    a.addiu(S0, S0, 1);
    a.li(T4, N);
    a.bne(S0, T4, "lv_k12");
    a.nop();

    a.addiu(S1, S1, -1);
    a.bne(S1, ZERO, "lv_outer");
    a.nop();

    // Checksum of x[0] bits.
    a.la(T0, "lv_x");
    a.lw(V0, 0, T0);
    a.srl(A0, V0, 16);
    a.jal("__print_u32");
    a.nop();
    a.la(T0, "lv_x");
    a.lw(V0, 0, T0);
    a.lw(RA, 20, SP);
    a.lw(S0, 16, SP);
    a.lw(S1, 12, SP);
    a.jr(RA);
    a.addiu(SP, SP, 24);

    a.data();
    a.align4();
    a.label("lv_x");
    a.space((N as u32 + 16) * 8);
    a.label("lv_y");
    a.space((N as u32 + 16) * 8);
    a.label("lv_z");
    a.space((N as u32 + 16) * 8);
    a.finish()
}

/// No input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![]
}
