//! `egrep` — "The UNIX pattern search program run three times over a
//! 27K input file" (Table 1).
//!
//! A naive multi-pass substring scan for a five-byte pattern with an
//! inner match loop, counting occurrences and matching lines.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;

/// Program text.
pub fn object() -> Object {
    let mut a = Asm::new("egrep");
    a.global_label("main");
    a.addiu(SP, SP, -40);
    a.sw(RA, 36, SP);
    a.sw(S0, 32, SP);
    a.sw(S1, 28, SP);
    a.sw(S2, 24, SP);
    a.sw(S3, 20, SP);
    a.sw(S4, 16, SP);

    a.la(A0, "eg_in_name");
    a.la(A1, "eg_buf");
    a.li(A2, 32 * 1024);
    a.jal("__read_all");
    a.nop();
    a.addiu(S0, V0, -5); // last feasible start

    a.li(S4, 3); // passes
    a.li(S2, 0); // total matches
    a.label("eg_pass");
    a.li(S1, 0); // position
    a.la(S3, "eg_buf");
    a.label("eg_scan");
    a.slt(T0, S1, S0);
    a.beq(T0, ZERO, "eg_pass_done");
    a.nop();
    // Inner compare of pattern "trace".
    a.addu(T1, S3, S1);
    a.la(T2, "eg_pat");
    a.li(T3, 0); // pattern index
    a.label("eg_cmp");
    a.addu(T4, T2, T3);
    a.lbu(T5, 0, T4);
    a.beq(T5, ZERO, "eg_hit"); // end of pattern: match
    a.nop();
    a.addu(T4, T1, T3);
    a.lbu(T6, 0, T4);
    a.bne(T6, T5, "eg_next");
    a.nop();
    a.b("eg_cmp");
    a.addiu(T3, T3, 1);
    a.label("eg_hit");
    a.addiu(S2, S2, 1);
    a.label("eg_next");
    a.b("eg_scan");
    a.addiu(S1, S1, 1);
    a.label("eg_pass_done");
    a.addiu(S4, S4, -1);
    a.bne(S4, ZERO, "eg_pass");
    a.nop();

    a.move_(A0, S2);
    a.jal("__print_u32");
    a.nop();
    a.move_(V0, S2);
    a.lw(RA, 36, SP);
    a.lw(S0, 32, SP);
    a.lw(S1, 28, SP);
    a.lw(S2, 24, SP);
    a.lw(S3, 20, SP);
    a.lw(S4, 16, SP);
    a.jr(RA);
    a.addiu(SP, SP, 40);

    a.data();
    a.label("eg_in_name");
    a.asciiz("egrep.in");
    a.label("eg_pat");
    a.asciiz("trace");
    a.align4();
    a.label("eg_buf");
    a.space(32 * 1024);
    a.finish()
}

/// Input files.
pub fn files() -> Vec<(String, Vec<u8>)> {
    vec![(
        "egrep.in".to_string(),
        crate::support::gen_text(0xe9e, 27 * 1024),
    )]
}
