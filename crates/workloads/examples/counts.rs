//! Prints each workload's bare-machine event signature — a quick way
//! to inspect the Table-1 characteristics (instructions, stalls,
//! cache misses) after changing a workload.

fn main() {
    for w in wrl_workloads::all() {
        let r = wrl_workloads::run_bare(&w);
        let c = &r.machine.counters;
        println!(
            "{:10} insts={:>9} cycles={:>10} fp_stall={:>8} fp_ideal={:>8} wb={:>8} dcm={:>8} icm={:>6}",
            w.name,
            r.insts,
            c.cycles,
            c.fp_stall_cycles,
            c.fp_stall_ideal,
            c.wb_stall_cycles,
            c.dcache_misses,
            c.icache_misses
        );
    }
}
