//! An offline, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of criterion this workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! throughput annotation and `Bencher::iter`. Measurement is a plain
//! warmup + timed-batch loop reporting mean wall time per iteration —
//! no statistics, plots or comparison against saved baselines.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean time per iteration from the measured batch.
    mean: Duration,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup: one call, then size a batch of ~200 ms.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(200).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.mean = t1.elapsed() / batch as u32;
        self.iters = batch;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per = b.mean;
        print!(
            "{}/{id}: {:.3} ms/iter ({} iters)",
            self.name,
            per.as_secs_f64() * 1e3,
            b.iters
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if per > Duration::ZERO => {
                print!("  [{:.1} Melem/s]", n as f64 / per.as_secs_f64() / 1e6);
            }
            Some(Throughput::Bytes(n)) if per > Duration::ZERO => {
                print!("  [{:.1} MB/s]", n as f64 / per.as_secs_f64() / 1e6);
            }
            _ => {}
        }
        println!();
        self
    }

    /// Ends the group (reporting is immediate; this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _c: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
