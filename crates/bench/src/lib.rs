//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md's experiment index). The helpers here
//! keep their output formats consistent.

use systrace::kernel::KernelConfig;
use systrace::ValidationRow;

/// Workload subset selection from argv: all twelve by default, or the
/// names given on the command line (useful for quick runs).
pub fn selected_workloads() -> Vec<systrace::workloads::Workload> {
    // Skip flag-like arguments so harness flags (e.g. the `--quiet`
    // that `cargo test -q` forwards to test binaries) never read as
    // workload names.
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    if args.is_empty() {
        systrace::workloads::all()
    } else {
        args.iter()
            .map(|n| {
                systrace::workloads::by_name(n).unwrap_or_else(|| panic!("unknown workload {n}"))
            })
            .collect()
    }
}

/// Runs the full validation for one workload on both operating
/// systems, like the paper's Tables 2 and 3.
pub fn validate_both(w: &systrace::workloads::Workload) -> (ValidationRow, ValidationRow) {
    let mach = systrace::validate(&KernelConfig::mach(), w);
    let ultrix = systrace::validate(&KernelConfig::ultrix(), w);
    (mach, ultrix)
}

/// Formats seconds like the paper's tables (3 significant-ish digits).
pub fn fmt_s(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:8.1}")
    } else {
        format!("{s:8.3}")
    }
}

/// Prints a horizontal bar for the Figure-3-style error chart.
pub fn bar(pct: f64, scale: f64) -> String {
    let n = (pct * scale).round() as usize;
    "#".repeat(n.min(120))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_s(0.1234).trim(), "0.123");
        assert_eq!(fmt_s(12.34).trim(), "12.3");
        assert_eq!(bar(2.0, 4.0), "########");
        assert_eq!(bar(1000.0, 4.0).len(), 120);
    }

    #[test]
    fn workload_selection_defaults_to_all() {
        // argv in tests contains the test binary name only.
        assert_eq!(selected_workloads().len(), 12);
    }
}
