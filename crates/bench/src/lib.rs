//! Shared helpers for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md's experiment index). The helpers here
//! keep their output formats consistent.

use systrace::kernel::KernelConfig;
use systrace::memsim::{AssocCache, PageMap, SpaceKey};
use systrace::trace::{Space, TraceSink};
use systrace::ValidationRow;

/// Workload subset selection from argv: all twelve by default, or the
/// names given on the command line (useful for quick runs).
pub fn selected_workloads() -> Vec<systrace::workloads::Workload> {
    // Skip flag-like arguments so harness flags (e.g. the `--quiet`
    // that `cargo test -q` forwards to test binaries) never read as
    // workload names.
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    if args.is_empty() {
        systrace::workloads::all()
    } else {
        args.iter()
            .map(|n| {
                systrace::workloads::by_name(n).unwrap_or_else(|| panic!("unknown workload {n}"))
            })
            .collect()
    }
}

/// Runs the full validation for one workload on both operating
/// systems, like the paper's Tables 2 and 3.
pub fn validate_both(w: &systrace::workloads::Workload) -> (ValidationRow, ValidationRow) {
    let mach = systrace::validate(&KernelConfig::mach(), w);
    let ultrix = systrace::validate(&KernelConfig::ultrix(), w);
    (mach, ultrix)
}

/// Formats seconds like the paper's tables (3 significant-ish digits).
pub fn fmt_s(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:8.1}")
    } else {
        format!("{s:8.3}")
    }
}

/// Prints a horizontal bar for the Figure-3-style error chart.
pub fn bar(pct: f64, scale: f64) -> String {
    let n = (pct * scale).round() as usize;
    "#".repeat(n.min(120))
}

/// The cache-design-sweep analysis sink (§3.1's motivating study):
/// one I-cache and one D-cache fed through a page map. Shared by
/// `cache_sweep` and `store_bench`; `tests/store_farm.rs` reproduces
/// it independently to pin farm-vs-sequential equality.
#[derive(Debug)]
pub struct CacheStudy {
    /// The instruction cache under study.
    pub icache: AssocCache,
    /// The data cache under study.
    pub dcache: AssocCache,
    pagemap: PageMap,
    cur_asid: u8,
}

impl CacheStudy {
    /// A study of one geometry (16-byte lines), translating through
    /// `pagemap`.
    pub fn new(size: u32, ways: usize, pagemap: PageMap) -> CacheStudy {
        CacheStudy {
            icache: AssocCache::new(size, 16, ways),
            dcache: AssocCache::new(size, 16, ways),
            pagemap,
            cur_asid: 1,
        }
    }

    fn translate(&mut self, vaddr: u32, space: Space) -> u32 {
        match vaddr {
            0x8000_0000..=0xbfff_ffff => vaddr & 0x1fff_ffff,
            _ => {
                let key = if vaddr >= 0xc000_0000 {
                    SpaceKey::Kernel
                } else {
                    match space {
                        Space::User(a) => SpaceKey::User(a),
                        Space::Kernel => SpaceKey::User(self.cur_asid),
                    }
                };
                self.pagemap.translate(key, vaddr)
            }
        }
    }
}

impl TraceSink for CacheStudy {
    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) {
        let pa = self.translate(vaddr, space);
        self.icache.access(pa);
    }
    fn dref(&mut self, vaddr: u32, _store: bool, _w: systrace::isa::Width, space: Space) {
        let pa = self.translate(vaddr, space);
        self.dcache.access(pa);
    }
    fn ctx_switch(&mut self, asid: u8) {
        self.cur_asid = asid;
    }
}

/// The fifteen `(size, ways)` geometries of the cache sweep, in
/// output-table order.
pub fn sweep_geometries() -> Vec<(u32, usize)> {
    [16u32 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10]
        .into_iter()
        .flat_map(|size| [1usize, 2, 4].into_iter().map(move |ways| (size, ways)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_s(0.1234).trim(), "0.123");
        assert_eq!(fmt_s(12.34).trim(), "12.3");
        assert_eq!(bar(2.0, 4.0), "########");
        assert_eq!(bar(1000.0, 4.0).len(), 120);
    }

    #[test]
    fn workload_selection_defaults_to_all() {
        // argv in tests contains the test binary name only.
        assert_eq!(selected_workloads().len(), 12);
    }
}
