//! One-pass N-sink throughput vs N dedicated passes (ROADMAP item
//! 3's cost argument): once the address stream exists, *analysis* is
//! cheap — but only if adding an analysis does not rerun the
//! decode+parse. The composed `wrl-tracer` stack feeds every sink
//! from one pass; this bench measures what that saves across the
//! twelve validation workloads.
//!
//! For each workload: one traced run, then the three window analyses
//! (sampled duty-cycle, working set, phase detection) run two ways —
//! three dedicated passes (decode+parse per analysis, the old
//! `run_predicted_*` shape) vs one composed three-sink pass. The
//! acceptance bar is a >= 2x aggregate speedup.

use std::time::{Duration, Instant};
use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{PageMap, Policy};
use systrace::tracer::{analyze_words, build_stack};

const SPECS: [&str; 3] = ["sampled:4k:12k:7", "wset:4096", "phase:4096"];

fn pm() -> PageMap {
    PageMap::new(Policy::FirstFree { base_pfn: 0x2000 })
}

fn main() {
    let spec = SPECS.join(",");
    println!("One-pass 3-sink stack vs 3 dedicated passes ({spec})");
    println!(
        "{:9} | {:>10} | {:>10} {:>10} | {:>7} | {:>9}",
        "", "words", "dedicated", "one-pass", "speedup", "Mwords/s"
    );
    println!("{:-<68}", "");

    let mut total_words = 0u64;
    let mut total_dedicated = Duration::ZERO;
    let mut total_one = Duration::ZERO;
    for w in wrl_bench::selected_workloads() {
        let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
        let run = sys.run(6_000_000_000);
        let words = &run.trace_words;

        // Warm the caches once so neither side pays first-touch costs.
        let warm = analyze_words(sys.parser(), words, build_stack(&spec, &pm()).unwrap());
        assert_eq!(warm.failed(), 0);

        let t = Instant::now();
        for s in SPECS {
            let report = analyze_words(sys.parser(), words, build_stack(s, &pm()).unwrap());
            assert_eq!(report.failed(), 0, "{}: dedicated {s} pass failed", w.name);
        }
        let dedicated = t.elapsed();

        let t = Instant::now();
        let report = analyze_words(sys.parser(), words, build_stack(&spec, &pm()).unwrap());
        let one = t.elapsed();
        assert_eq!(report.failed(), 0, "{}: composed pass failed", w.name);
        assert_eq!(report.words, words.len() as u64);

        total_words += report.words;
        total_dedicated += dedicated;
        total_one += one;
        println!(
            "{:9} | {:>10} | {:>9.1}ms {:>9.1}ms | {:>6.2}x | {:>9.1}",
            w.name,
            report.words,
            dedicated.as_secs_f64() * 1e3,
            one.as_secs_f64() * 1e3,
            dedicated.as_secs_f64() / one.as_secs_f64(),
            report.words as f64 / one.as_secs_f64() / 1e6,
        );
    }
    println!("{:-<68}", "");

    let speedup = total_dedicated.as_secs_f64() / total_one.as_secs_f64();
    println!(
        "{:9} | {:>10} | {:>9.1}ms {:>9.1}ms | {:>6.2}x | {:>9.1}",
        "total",
        total_words,
        total_dedicated.as_secs_f64() * 1e3,
        total_one.as_secs_f64() * 1e3,
        speedup,
        total_words as f64 / total_one.as_secs_f64() / 1e6,
    );
    println!("one decode+parse feeds all three sinks; the dedicated passes pay it three times");
    assert!(
        speedup >= 2.0,
        "aggregate one-pass speedup {speedup:.2}x fell below the 2x acceptance bar"
    );
    println!("PASS: one-pass 3-sink stack is {speedup:.2}x faster than 3 dedicated passes");
}
