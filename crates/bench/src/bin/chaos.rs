//! chaos: run a seeded fault-injection campaign against the golden
//! trace and report the outcome trichotomy.
//!
//! Usage: `chaos [n_plans] [base_seed] [out_path] [trace_path]`
//!
//! Defaults: 440 plans, the CI smoke seed, stdout only, and the
//! committed `tests/data/golden.w3kt`. The campaign is fully
//! deterministic — `(base_seed, n_plans)` is the whole spec, and any
//! single plan reruns from the `site:seed:intensity` line printed on
//! failure. Exits nonzero if any plan reaches a forbidden outcome
//! (panic or silently wrong answer), which is the chaos smoke job's
//! pass criterion in CI.

use std::process::ExitCode;

use systrace::fault::{campaign, run_campaign, ChaosInput, Outcome};
use systrace::trace::TraceArchive;

/// The CI smoke seed; changing it re-rolls every plan, so keep it
/// fixed unless the stack's fault surface changes intentionally.
const DEFAULT_SEED: u64 = 0x5752_4c94_0600_c4a0;

fn parse_seed(s: &str) -> u64 {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).expect("bad hex seed"),
        None => s.parse().expect("bad seed"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let n_plans: usize = args.get(1).map_or(440, |s| s.parse().expect("bad n_plans"));
    let base_seed = args.get(2).map_or(DEFAULT_SEED, |s| parse_seed(s));
    let out_path = args.get(3).filter(|s| *s != "-");
    let trace_path = args.get(4).map_or("tests/data/golden.w3kt", |s| s.as_str());

    systrace::obs::register_all();
    let archive =
        TraceArchive::load(trace_path).unwrap_or_else(|e| panic!("cannot load {trace_path}: {e}"));
    let input = ChaosInput::new(archive);

    let plans = campaign(base_seed, n_plans);
    let report = run_campaign(&input, &plans);
    let (detected, harmless, absorbed, forbidden) = report.totals();

    let mut doc = String::new();
    doc.push_str(&format!(
        "# chaos campaign: {n_plans} plans, base seed {base_seed:#x}, trace {trace_path}\n\n"
    ));
    doc.push_str(&report.render());
    doc.push_str(&format!(
        "\nsummary: {detected} detected, {harmless} harmless, {absorbed} absorbed, \
         {forbidden} forbidden\n"
    ));
    for (plan, why) in report.forbidden() {
        doc.push_str(&format!("FORBIDDEN {plan} -> {why}\n"));
    }
    // The detailed per-plan log: every line is a rerunnable spec.
    doc.push('\n');
    for (plan, outcome) in &report.results {
        doc.push_str(&format!("{plan} {}\n", outcome.kind()));
    }

    print!("{doc}");
    if let Some(path) = out_path {
        std::fs::write(path, &doc).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if report
        .results
        .iter()
        .any(|(_, o)| matches!(o, Outcome::Forbidden { .. }))
    {
        eprintln!("chaos: forbidden outcomes present");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
