//! §4.3: in-kernel buffer size vs trace "dirt".
//!
//! "Each time the tracing system changes from trace-generation mode
//! to trace-analysis mode, a certain amount of 'dirt' is introduced
//! into the trace … The approach taken to minimize the inaccuracies
//! introduced by these transitions was to be sure they are rare, by
//! making the in-kernel trace buffer large."

use systrace::kernel::{build_system, KernelConfig};

fn main() {
    let w = systrace::workloads::by_name("tomcatv").unwrap();
    println!("In-kernel buffer size vs generation->analysis transitions (tomcatv, Ultrix)");
    println!(
        "{:>10} | {:>11} | {:>13} | {:>16}",
        "buffer", "transitions", "trace words", "insts/analysis"
    );
    println!("{:-<60}", "");
    for mb in [1u32, 2, 4, 8, 14] {
        let mut cfg = KernelConfig::ultrix().traced();
        cfg.ktrace_bytes = mb << 20;
        let mut sys = build_system(&cfg, &[&w]);
        let run = sys.run(8_000_000_000);
        let mut parser = sys.parser();
        let mut sink = systrace::trace::CollectSink::default();
        parser.parse_all(&run.trace_words, &mut sink);
        assert_eq!(parser.stats.errors, 0);
        let insts = parser.stats.user_irefs + parser.stats.kernel_irefs;
        println!(
            "{:>7} MB | {:>11} | {:>13} | {:>16}",
            mb,
            parser.stats.mode_transitions,
            run.trace_words.len(),
            insts / (parser.stats.mode_transitions + 1),
        );
    }
    println!("{:-<60}", "");
    println!("the paper's 64 MB buffer allowed ~32M instructions between analysis phases;");
    println!("our scaled runs show the same inverse relationship.");
}
