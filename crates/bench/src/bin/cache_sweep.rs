//! The downstream use case that motivated the whole tracing system
//! (§3.1): exploring memory-system designs against one system trace.
//! A single traced run of a workload is re-simulated across cache
//! sizes and associativities — the kind of study the WRL traces fed
//! ([7, 9, 18]).
//!
//! The sweep runs on the `wrl-store` replay farm: the trace is
//! compressed into a block store once, then replayed into all fifteen
//! cache geometries at once — decoding and parsing the trace one time
//! instead of fifteen. The results are bit-identical to feeding each
//! geometry its own sequential parse (`tests/store_farm.rs` pins
//! this).

use systrace::kernel::{build_system, KernelConfig};
use systrace::store::{replay, FarmCfg, StoreObs, TraceStore, DEFAULT_BLOCK_WORDS};
use wrl_bench::{sweep_geometries, CacheStudy};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tomcatv".into());
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let w = systrace::workloads::by_name(&name).expect("workload");
    eprintln!("collecting one traced run of {name} (Ultrix)...");
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(8_000_000_000);
    let archive = sys.archive(&run);
    let store = TraceStore::from_archive(&archive, DEFAULT_BLOCK_WORDS);
    eprintln!(
        "{} trace words in {} blocks ({} -> {} bytes, {:.2}x); \
         sweeping cache designs on {workers} workers\n",
        store.n_words,
        store.n_blocks(),
        store.raw_bytes(),
        store.compressed_bytes(),
        store.raw_bytes() as f64 / store.compressed_bytes().max(1) as f64,
    );

    let geometries = sweep_geometries();
    let sinks: Vec<CacheStudy> = geometries
        .iter()
        .map(|&(size, ways)| CacheStudy::new(size, ways, sys.pagemap.clone()))
        .collect();

    let cfg = FarmCfg {
        workers,
        ..FarmCfg::default()
    };
    let (report, sinks) = replay(&store, sinks, cfg).expect("replay");
    let obs = StoreObs::register();
    obs.export_store(&store);
    obs.export_farm(&report);

    println!("Cache design sweep over one {name} system trace");
    println!(
        "{:>7} {:>5} | {:>12} {:>12}",
        "size", "ways", "imiss ratio", "dmiss ratio"
    );
    println!("{:-<44}", "");
    for ((size, ways), study) in geometries.into_iter().zip(&sinks) {
        println!(
            "{:>4} KB {:>5} | {:>11.4}% {:>11.4}%",
            size >> 10,
            ways,
            100.0 * study.icache.miss_ratio(),
            100.0 * study.dcache.miss_ratio(),
        );
    }
    println!("{:-<44}", "");
    println!("one trace, fifteen memory systems — the §3.1 motivation in action");
}
