//! The downstream use case that motivated the whole tracing system
//! (§3.1): exploring memory-system designs against one system trace.
//! A single traced run of a workload is re-simulated across cache
//! sizes and associativities — the kind of study the WRL traces fed
//! ([7, 9, 18]).

use std::sync::Arc;
use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{AssocCache, PageMap, SpaceKey};
use systrace::trace::{Space, TraceSink};

/// A sink that feeds one I-cache and one D-cache through a page map.
struct CacheStudy {
    icache: AssocCache,
    dcache: AssocCache,
    pagemap: PageMap,
    cur_asid: u8,
}

impl CacheStudy {
    fn translate(&mut self, vaddr: u32, space: Space) -> u32 {
        match vaddr {
            0x8000_0000..=0xbfff_ffff => vaddr & 0x1fff_ffff,
            _ => {
                let key = if vaddr >= 0xc000_0000 {
                    SpaceKey::Kernel
                } else {
                    match space {
                        Space::User(a) => SpaceKey::User(a),
                        Space::Kernel => SpaceKey::User(self.cur_asid),
                    }
                };
                self.pagemap.translate(key, vaddr)
            }
        }
    }
}

impl TraceSink for CacheStudy {
    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) {
        let pa = self.translate(vaddr, space);
        self.icache.access(pa);
    }
    fn dref(&mut self, vaddr: u32, _store: bool, _w: systrace::isa::Width, space: Space) {
        let pa = self.translate(vaddr, space);
        self.dcache.access(pa);
    }
    fn ctx_switch(&mut self, asid: u8) {
        self.cur_asid = asid;
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tomcatv".into());
    let w = systrace::workloads::by_name(&name).expect("workload");
    eprintln!("collecting one traced run of {name} (Ultrix)...");
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(8_000_000_000);
    let archive = sys.archive(&run);
    eprintln!(
        "{} trace words; sweeping cache designs\n",
        archive.words.len()
    );

    println!("Cache design sweep over one {name} system trace");
    println!(
        "{:>7} {:>5} | {:>12} {:>12}",
        "size", "ways", "imiss ratio", "dmiss ratio"
    );
    println!("{:-<44}", "");
    for size in [16u32 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10] {
        for ways in [1usize, 2, 4] {
            let mut study = CacheStudy {
                icache: AssocCache::new(size, 16, ways),
                dcache: AssocCache::new(size, 16, ways),
                pagemap: sys.pagemap.clone(),
                cur_asid: 1,
            };
            let mut parser = Arc::new(archive.kernel_table.clone());
            let mut p = systrace::trace::TraceParser::new(parser.clone());
            for (asid, t) in &archive.user_tables {
                p.set_user_table(*asid, Arc::new(t.clone()));
            }
            p.parse_all(&archive.words, &mut study);
            println!(
                "{:>4} KB {:>5} | {:>11.4}% {:>11.4}%",
                size >> 10,
                ways,
                100.0 * study.icache.miss_ratio(),
                100.0 * study.dcache.miss_ratio(),
            );
            let _ = &mut parser;
        }
    }
    println!("{:-<44}", "");
    println!("one trace, fifteen memory systems — the §3.1 motivation in action");
}
