//! Ablation: the §5.1 idle-time scaling constant.
//!
//! The predictor converts idle-loop instructions in the trace into
//! untraced I/O-wait time by dividing out the instrumentation's time
//! dilation. The paper used its single overall slowdown (15) for
//! this; our runtime slows the memory-op-free idle loop less than
//! average code, so the calibrated model uses the idle loop's own
//! measured slowdown (7.5). This bench recomputes every Ultrix
//! prediction under 7.5 / 12 / 15 to show how strongly the constant
//! dominates the error budget for I/O-bound workloads — the paper's
//! "estimates of idle time are one of the dominant sources of error".

use systrace::kernel::KernelConfig;
use systrace::memsim::percent_error;

fn main() {
    const SCALES: [f64; 3] = [7.5, 12.0, 15.0];
    println!("Idle-scale ablation: predicted-time error (Ultrix) per constant");
    println!("          |  idle% | err @7.5 | err @12  | err @15",);
    println!("{:-<58}", "");
    let mut worst = [0.0f64; 3];
    for w in wrl_bench::selected_workloads() {
        let row = systrace::validate(&KernelConfig::ultrix(), &w);
        let p = &row.predicted.prediction;
        let idle = row.predicted.idle_insts as f64;
        let base = p.cpu_cycles + p.mem_stall_cycles + p.arith_stall_cycles;
        let measured = row.measured.seconds;
        let mut errs = [0.0f64; 3];
        for (k, scale) in SCALES.iter().enumerate() {
            let secs = (base + idle * scale) * 40.0e-9;
            errs[k] = percent_error(secs, measured);
            worst[k] = worst[k].max(errs[k]);
        }
        println!(
            "{:9} | {:>5.1}% | {:>7.2}% | {:>7.2}% | {:>7.2}%",
            w.name,
            100.0 * idle / row.predicted.trace_insts.max(1) as f64,
            errs[0],
            errs[1],
            errs[2]
        );
    }
    println!("{:-<58}", "");
    println!(
        "worst-case error: {:.1}% @7.5, {:.1}% @12, {:.1}% @15",
        worst[0], worst[1], worst[2]
    );
    println!("the paper's own sed error (12%) is this mechanism: an idle scale");
    println!("calibrated on average code, applied to the idle loop (§5.1)");
}
