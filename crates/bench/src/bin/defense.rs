//! §4.3 defensive tracing: "the format of trace contains a significant
//! degree of redundancy, such that missing words of trace or erroneous
//! writes into the trace are detected with a very high probability."
//!
//! We take a known-good system trace, inject three kinds of damage
//! (dropped words, overwritten words, junk control words), and measure
//! how often the parser's redundancy checks catch it.

use systrace::kernel::{build_system, KernelConfig};

fn parse_errors(sys: &systrace::kernel::System, words: &[u32]) -> u64 {
    let mut parser = sys.parser();
    let mut sink = systrace::trace::CollectSink::default();
    parser.parse_all(words, &mut sink);
    parser.stats.errors
}

fn main() {
    let w = systrace::workloads::by_name("yacc").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(4_000_000_000);
    assert_eq!(
        parse_errors(&sys, &run.trace_words),
        0,
        "baseline must be clean"
    );
    let n = run.trace_words.len();
    println!("Defensive tracing: damage detection over a {n}-word yacc trace");

    let mut rng = 0x5eed_u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let trials = 200;
    for (kind, mutate) in [
        (
            "drop one word",
            Box::new(|v: &mut Vec<u32>, at: usize| {
                v.remove(at);
            }) as Box<dyn Fn(&mut Vec<u32>, usize)>,
        ),
        (
            "overwrite with garbage address",
            Box::new(|v: &mut Vec<u32>, at: usize| {
                v[at] = 0x7abc_de00 | (at as u32 & 0xff);
            }),
        ),
        (
            "overwrite with junk control",
            Box::new(|v: &mut Vec<u32>, at: usize| {
                v[at] = 0x0000_00ee;
            }),
        ),
    ] {
        let mut detected = 0;
        for _ in 0..trials {
            let at = (next() as usize) % (n - 2) + 1;
            let mut words = run.trace_words.clone();
            mutate(&mut words, at);
            if parse_errors(&sys, &words) > 0 {
                detected += 1;
            }
        }
        println!(
            "  {kind:32}: {detected}/{trials} detected ({:.1}%)",
            100.0 * detected as f64 / trials as f64
        );
    }
    println!("(undetected cases are single-word mutations that remain positionally consistent,");
    println!(" e.g. a corrupted data address — exactly the residual risk the paper accepts)");
}
