//! Figure 3: "Error in predicted execution times for Ultrix" — the
//! percent-error bar chart across all twelve workloads.

use systrace::kernel::KernelConfig;

fn main() {
    println!("Figure 3: percent error in predicted execution time (Ultrix)");
    println!("{:-<70}", "");
    let mut rows = Vec::new();
    for w in wrl_bench::selected_workloads() {
        let row = systrace::validate(&KernelConfig::ultrix(), &w);
        rows.push((w.name, row.time_error_pct()));
    }
    for (name, err) in &rows {
        println!("{:9} {:>6.2}% |{}", name, err, wrl_bench::bar(*err, 4.0));
    }
    println!("{:-<70}", "");
    let over5 = rows.iter().filter(|(_, e)| *e > 5.0).count();
    println!(
        "{} of {} workloads above 5% (the paper had 3: sed, compress, liv)",
        over5,
        rows.len()
    );
}
