//! §3.2 footnote: text expansion across instrumentation tools.
//!
//! "For a gcc binary with 688128 bytes of text, pixie -t grows program
//! text to 4131968 bytes [6.0x] … QPT expands gcc text by a factor of
//! 5.5. The modified epoxie grows text to 1515520 [2.2x]."

use systrace::epoxie::{build_traced, pixie::pixie, FullPolicy, Mode};
use systrace::isa::link::Layout;

fn main() {
    println!("Text expansion by instrumentation tool (factor over original text)");
    println!(
        "{:9} | {:>10} | {:>8} | {:>8} | {:>8}",
        "", "orig bytes", "modified", "original", "pixie"
    );
    println!("{:-<56}", "");
    for w in wrl_bench::selected_workloads() {
        let modified = build_traced(
            &w.objects,
            Layout::user(),
            "__start",
            Mode::Modified,
            FullPolicy::Syscall,
        )
        .unwrap();
        let original = build_traced(
            &w.objects,
            Layout::user(),
            "__start",
            Mode::Original,
            FullPolicy::Syscall,
        )
        .unwrap();
        let orig = systrace::workloads::link_user(&w.objects);
        let px = pixie(&orig.exe).unwrap();
        println!(
            "{:9} | {:>10} | {:>7.2}x | {:>7.2}x | {:>7.2}x",
            w.name,
            orig.exe.text_size(),
            modified.expansion.factor(),
            original.expansion.factor(),
            px.expansion,
        );
    }
    println!("{:-<56}", "");
    println!("paper (gcc): modified epoxie 2.2x, original epoxie ~5.5x, pixie 6.0x, QPT 5.5x");
}
