//! Metrics-recording overhead: on vs off, in one process.
//!
//! The observability layer claims near-zero overhead (§4.1 is the
//! paper measuring *its own* machinery's cost; this is ours). The
//! runtime kill-switch makes the measurement honest: the same binary,
//! same code paths and same branch sites run with recording enabled
//! and disabled, so the difference is exactly the cost of the atomic
//! updates and clock reads — not of a different build.
//!
//! Like `streaming.rs`, the two modes are interleaved with their
//! order flipped every iteration and the minimum kept, so host drift
//! hits both equally.
//!
//! Usage: `obs_overhead [workload ...]` (default: sed yacc).

use std::time::{Duration, Instant};

use systrace::kernel::KernelConfig;
use systrace::obs;
use systrace::trace::PipelineCfg;

fn timed<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed(), v)
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["sed", "yacc"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    const RUNS: u32 = 31;
    let pcfg = PipelineCfg {
        chunk_words: 4096,
        depth: 2,
        workers: 2,
        batch_events: 8192,
    };

    obs::register_all();
    if !obs::compiled_with_recording() {
        println!("note: wrl-obs built without the `record` feature;");
        println!("both columns measure the compiled-out no-op path.");
    }
    println!("Metrics recording overhead (Ultrix, metered pipeline, best of {RUNS})");
    println!(
        "{:9} | {:>9} | {:>9} | {:>9} | {:>9}",
        "", "off", "on", "delta", "overhead"
    );
    println!("{:-<60}", "");
    for name in names {
        let w =
            systrace::workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        let cfg = KernelConfig::ultrix().traced();
        let arith = systrace::pixie_arith_stalls(&w);

        let run_mode = |on: bool| {
            obs::set_recording(on);
            obs::global().reset();
            let (t, p) = timed(|| {
                let b = systrace::run_predicted_metered(&cfg, &w, arith);
                let s = systrace::run_predicted_streaming_metered(&cfg, &w, arith, pcfg);
                assert_eq!(b.prediction, s.prediction);
                b
            });
            assert_eq!(p.parse_errors, 0);
            t
        };
        // Each iteration runs both modes back to back (order flipped
        // each time), and the overhead is the *median of the paired
        // per-iteration deltas*: slow drift hits both halves of a pair
        // almost equally, so pairing cancels it far better than
        // comparing two independent minima does.
        let mut t_off = Duration::MAX;
        let mut t_on = Duration::MAX;
        let mut deltas = Vec::with_capacity(RUNS as usize);
        for i in 0..RUNS {
            let (off, on) = if i % 2 == 0 {
                let off = run_mode(false);
                let on = run_mode(true);
                (off, on)
            } else {
                let on = run_mode(true);
                let off = run_mode(false);
                (off, on)
            };
            t_off = t_off.min(off);
            t_on = t_on.min(on);
            deltas.push(on.as_secs_f64() - off.as_secs_f64());
        }
        obs::set_recording(true);
        deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_delta = deltas[deltas.len() / 2];
        let overhead = median_delta / t_off.as_secs_f64() * 100.0;
        println!(
            "{:9} | {:>8.3}s | {:>8.3}s | {:>+8.4}s | {:>+8.2}%",
            name,
            t_off.as_secs_f64(),
            t_on.as_secs_f64(),
            median_delta,
            overhead,
        );
    }
    println!("{:-<60}", "");
    println!("off/on: best of {RUNS} per mode. delta: median of the {RUNS} paired");
    println!("per-iteration (on - off) differences; overhead = delta / off.");
    println!("The full metered pipeline is timed (traced machine run + parse");
    println!("+ simulate + predict, batch and streaming back to back).");
    println!("Values near zero (either sign) mean recording costs less than");
    println!("the host's run-to-run noise.");
}
