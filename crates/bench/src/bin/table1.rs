//! Table 1: "Experimental workloads with execution times for a
//! DECstation 5000/200" — the workload inventory with untraced run
//! times measured by the machine's cycle counter (Ultrix).

use systrace::kernel::KernelConfig;

fn main() {
    println!("Table 1: experimental workloads (untraced Ultrix, measured run time)");
    println!("{:-<100}", "");
    for w in wrl_bench::selected_workloads() {
        let m = systrace::run_measured(&KernelConfig::ultrix(), &w);
        println!(
            "{:9} {:>9.4} s  {:>11} insts  {:>7} utlb  | {}",
            w.name,
            m.seconds,
            m.insts,
            m.utlb_misses,
            w.description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!("{:-<100}", "");
    println!("(inputs are scaled ~100x down from the paper's; see EXPERIMENTS.md)");
}
