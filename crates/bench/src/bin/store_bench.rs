//! store_bench: compression ratio, decode throughput and replay-farm
//! scaling for the `wrl-store` trace store.
//!
//! Three sections, each honest about its method:
//!
//! 1. **Compression** — every workload's Ultrix system trace is
//!    compressed at the default block size in both the v3 row format
//!    and the v4 columnar format; losslessness is asserted (decode ==
//!    original words) for both and the ratio distributions are
//!    summarised. The v4 median is asserted to at least double the
//!    pinned v2 median ratio.
//! 2. **Decode throughput** — block-at-a-time decode (CRC included)
//!    of the largest trace, best of several passes, for the v3 row
//!    path and the v4 columnar path via the whole-file block reader.
//! 3. **Farm scaling** — the fifteen-geometry cache sweep replayed
//!    from the store: sequentially (each geometry decodes and parses
//!    the store itself — the non-farm workflow) and on the shared-
//!    parse farm at 1, 2 and 4 workers. Results are asserted
//!    bit-identical to the sequential sweep; configurations are
//!    rotated across repetitions and the minimum kept.
//!
//! Usage: `store_bench [sweep_workload]` (default: compress).
//! Regenerates `results/store_bench.txt` via stdout.

use std::time::{Duration, Instant};

use systrace::kernel::{build_system, KernelConfig};
use systrace::store::{replay, BlockFormat, FarmCfg, StoreObs, TraceStore, DEFAULT_BLOCK_WORDS};
use systrace::trace::TraceArchive;
use wrl_bench::{sweep_geometries, CacheStudy};

fn timed<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed(), v)
}

/// Collects one traced Ultrix run of the named workload.
fn trace_of(name: &str) -> (TraceArchive, systrace::memsim::PageMap) {
    let w = systrace::workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(8_000_000_000);
    (sys.archive(&run), sys.pagemap.clone())
}

/// One sequential, non-farm sweep pass: the sink decodes and parses
/// the store for itself, geometry by geometry.
fn sequential_sweep(store: &TraceStore, pagemap: &systrace::memsim::PageMap) -> Vec<CacheStudy> {
    sweep_geometries()
        .into_iter()
        .map(|(size, ways)| {
            let mut study = CacheStudy::new(size, ways, pagemap.clone());
            let mut parser = store.parser();
            for i in 0..store.n_blocks() {
                let words = store.decode_block(i).expect("block decodes");
                parser.push_words(&words, &mut study);
            }
            parser.finish(&mut study);
            study
        })
        .collect()
}

fn farm_sweep(
    store: &TraceStore,
    pagemap: &systrace::memsim::PageMap,
    workers: usize,
) -> Vec<CacheStudy> {
    let sinks = sweep_geometries()
        .into_iter()
        .map(|(size, ways)| CacheStudy::new(size, ways, pagemap.clone()))
        .collect();
    let cfg = FarmCfg {
        workers,
        ..FarmCfg::default()
    };
    let (_, sinks) = replay(store, sinks, cfg).expect("replay");
    sinks
}

fn assert_identical(a: &[CacheStudy], b: &[CacheStudy]) {
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.icache.accesses, y.icache.accesses);
        assert_eq!(x.icache.misses, y.icache.misses);
        assert_eq!(x.dcache.accesses, y.dcache.accesses);
        assert_eq!(x.dcache.misses, y.dcache.misses);
    }
}

/// The v2 store's median compression ratio across the twelve
/// workloads, pinned from the `results/store_bench.txt` committed
/// with the row codec. The v4 columnar codec is measured against it.
const V2_MEDIAN_RATIO: f64 = 2.32;

/// The acceptance floor: the v4 median ratio must be at least this
/// many times the pinned v2 median.
const V4_MIN_GAIN_OVER_V2: f64 = 2.0;

fn main() {
    let sweep_name = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "compress".into());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let obs = StoreObs::register();

    println!("wrl-store: compression and replay-farm benchmark");
    println!("block size {DEFAULT_BLOCK_WORDS} words; host parallelism: {cores} CPU(s)");
    println!();

    // ---- 1. Compression across all twelve workloads -------------
    println!("Compression of one Ultrix system trace per workload, v3 row vs v4 columnar");
    println!(
        "{:10} | {:>9} | {:>9} | {:>9} | {:>6} | {:>9} | {:>6}",
        "workload", "words", "raw KB", "v3 KB", "v3", "v4 KB", "v4"
    );
    println!("{:-<72}", "");
    let mut ratios: Vec<(f64, &'static str)> = Vec::new();
    let mut ratios_v4: Vec<(f64, &'static str)> = Vec::new();
    let mut sweep_inputs = None;
    for w in systrace::workloads::all() {
        let (archive, pagemap) = trace_of(w.name);
        let store = TraceStore::from_archive(&archive, DEFAULT_BLOCK_WORDS);
        let v4 =
            TraceStore::from_archive_with(&archive, DEFAULT_BLOCK_WORDS, BlockFormat::Columnar);
        for (tag, s) in [("v3", &store), ("v4", &v4)] {
            assert_eq!(
                s.words().expect("all CRCs hold"),
                archive.words,
                "{} {tag}: compression must be lossless",
                w.name
            );
        }
        let ratio = store.raw_bytes() as f64 / store.compressed_bytes().max(1) as f64;
        let ratio4 = v4.raw_bytes() as f64 / v4.compressed_bytes().max(1) as f64;
        println!(
            "{:10} | {:>9} | {:>9} | {:>9} | {:>5.2}x | {:>9} | {:>5.2}x",
            w.name,
            store.n_words,
            store.raw_bytes() / 1024,
            store.compressed_bytes() / 1024,
            ratio,
            v4.compressed_bytes() / 1024,
            ratio4,
        );
        ratios.push((ratio, w.name));
        ratios_v4.push((ratio4, w.name));
        if w.name == sweep_name {
            obs.export_store(&store);
            sweep_inputs = Some((store, v4, pagemap));
        }
    }
    println!("{:-<72}", "");
    ratios.sort_by(|a, b| a.0.total_cmp(&b.0));
    ratios_v4.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (tag, r) in [("v3", &ratios), ("v4", &ratios_v4)] {
        let (min, med, max) = (r[0], r[r.len() / 2], r[r.len() - 1]);
        println!(
            "{tag} ratio min {:.2}x ({}) / median {:.2}x ({}) / max {:.2}x ({})",
            min.0, min.1, med.0, med.1, max.0, max.1
        );
    }
    let med_v4 = ratios_v4[ratios_v4.len() / 2].0;
    println!(
        "v4 median is {:.2}x the pinned v2 median of {V2_MEDIAN_RATIO:.2}x (floor {:.1}x)",
        med_v4 / V2_MEDIAN_RATIO,
        V4_MIN_GAIN_OVER_V2,
    );
    assert!(
        med_v4 >= V4_MIN_GAIN_OVER_V2 * V2_MEDIAN_RATIO,
        "v4 median ratio {med_v4:.2}x must be at least {V4_MIN_GAIN_OVER_V2}x the pinned v2 \
         median of {V2_MEDIAN_RATIO}x"
    );
    println!();

    let (store, store_v4, pagemap) =
        sweep_inputs.unwrap_or_else(|| panic!("sweep workload {sweep_name} not among the twelve"));

    // ---- 2. Block decode throughput ------------------------------
    let mut t_decode = Duration::MAX;
    let mut t_decode4 = Duration::MAX;
    for _ in 0..5 {
        let (t, _) = timed(|| {
            for i in 0..store.n_blocks() {
                std::hint::black_box(store.decode_block(i).expect("block decodes"));
            }
        });
        t_decode = t_decode.min(t);
        let (t, _) = timed(|| {
            let mut reader = store_v4.block_reader();
            while let Some(block) = reader.next_block() {
                std::hint::black_box(block.expect("block decodes"));
            }
        });
        t_decode4 = t_decode4.min(t);
    }
    let raw_mb = store.raw_bytes() as f64 / (1 << 20) as f64;
    for (tag, t) in [("v3 row", t_decode), ("v4 columnar", t_decode4)] {
        println!(
            "Block decode ({sweep_name}, {tag}): {} blocks, {raw_mb:.1} MB raw in {:.3}s = \
             {:.0} MB/s (CRC checked)",
            store.n_blocks(),
            t.as_secs_f64(),
            raw_mb / t.as_secs_f64(),
        );
    }
    println!();

    // ---- 3. Farm replay scaling ----------------------------------
    const RUNS: usize = 3;
    println!("Fifteen-geometry cache sweep of the {sweep_name} trace, best of {RUNS}");
    println!("{:24} | {:>9} | {:>8}", "schedule", "time", "speedup");
    println!("{:-<47}", "");
    // configs: None = sequential; Some(w) = farm with w workers.
    let configs: [Option<usize>; 4] = [None, Some(1), Some(2), Some(4)];
    let mut best = [Duration::MAX; 4];
    let mut results: [Option<Vec<CacheStudy>>; 4] = [None, None, None, None];
    for run in 0..RUNS {
        // Rotate the execution order so drift hits every config.
        for k in 0..configs.len() {
            let idx = (k + run) % configs.len();
            let (t, sinks) = match configs[idx] {
                None => timed(|| sequential_sweep(&store, &pagemap)),
                Some(w) => timed(|| farm_sweep(&store, &pagemap, w)),
            };
            best[idx] = best[idx].min(t);
            results[idx] = Some(sinks);
        }
    }
    let baseline = results[0].take().expect("RUNS > 0");
    let t_seq = best[0];
    println!(
        "{:24} | {:>8.3}s | {:>7.2}x",
        "sequential (15 passes)",
        t_seq.as_secs_f64(),
        1.0
    );
    for (i, cfg) in configs.iter().enumerate().skip(1) {
        let sinks = results[i].take().expect("RUNS > 0");
        assert_identical(&sinks, &baseline); // farm == sequential, always
        println!(
            "{:24} | {:>8.3}s | {:>7.2}x",
            format!("farm, {} worker(s)", cfg.unwrap()),
            best[i].as_secs_f64(),
            t_seq.as_secs_f64() / best[i].as_secs_f64(),
        );
    }
    println!("{:-<47}", "");
    println!("sequential: every geometry decodes + parses the store itself.");
    println!("farm (shared parse): one decode + parse feeds all fifteen sinks,");
    println!("so the speedup comes from work amortisation and holds even on a");
    println!("single CPU; per-worker decode adds on machines with spare cores.");
    println!("Farm results are asserted identical to the sequential sweep.");
}
