//! Table 2: "Run Times, measured and predicted, in seconds" — the
//! headline validation, for both Mach and Ultrix.

fn main() {
    println!("Table 2: run times, measured and predicted (seconds)");
    println!(
        "{:9} | {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6}",
        "", "Mach meas", "Mach pred", "err%", "Ultx meas", "Ultx pred", "err%"
    );
    println!("{:-<72}", "");
    for w in wrl_bench::selected_workloads() {
        let (mach, ultrix) = wrl_bench::validate_both(&w);
        println!(
            "{:9} | {} {} {:>5.1}% | {} {} {:>5.1}%",
            w.name,
            wrl_bench::fmt_s(mach.measured.seconds),
            wrl_bench::fmt_s(mach.predicted.seconds),
            mach.time_error_pct(),
            wrl_bench::fmt_s(ultrix.measured.seconds),
            wrl_bench::fmt_s(ultrix.predicted.seconds),
            ultrix.time_error_pct(),
        );
        assert_eq!(mach.predicted.parse_errors, 0, "{}: trace corrupt", w.name);
        assert_eq!(
            ultrix.predicted.parse_errors, 0,
            "{}: trace corrupt",
            w.name
        );
    }
    println!("{:-<72}", "");
    println!("predicted = CPU cycles + memory stalls + pixie arith stalls + scaled idle I/O");
}
