//! Batch vs streaming analysis: end-to-end wall time.
//!
//! The paper's motivation for on-the-fly analysis is that traces are
//! "too large to store" (§3.2) — but it is also simply *faster*: the
//! analysis program consumes each buffer while it is hot instead of
//! accumulating the whole trace and replaying it cold. This binary
//! times the two workflows end to end (traced machine run + parse +
//! memory-system simulation) and checks that they produce identical
//! predictions.
//!
//! Usage: `streaming [workload ...]` (default: sed yacc).

use std::time::{Duration, Instant};

use systrace::kernel::KernelConfig;
use systrace::trace::PipelineCfg;
use systrace::Predicted;

fn timed<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed(), v)
}

fn same_prediction(a: &Predicted, b: &Predicted) -> bool {
    a.prediction == b.prediction
        && a.utlb_misses == b.utlb_misses
        && a.trace_insts == b.trace_insts
        && a.kernel_insts == b.kernel_insts
        && a.idle_insts == b.idle_insts
        && a.trace_words == b.trace_words
        && a.parse_errors == b.parse_errors
        && a.sanity_violations == b.sanity_violations
        && a.exit_code == b.exit_code
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["sed", "yacc"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    const RUNS: u32 = 15;

    println!("Batch vs streaming trace analysis (Ultrix, best of {RUNS})");
    println!(
        "{:9} | {:>9} | {:>9} | {:>7} | {:>12}",
        "", "batch", "stream", "ratio", "trace words"
    );
    println!("{:-<60}", "");
    for name in names {
        let w =
            systrace::workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        let cfg = KernelConfig::ultrix().traced();
        let arith = systrace::pixie_arith_stalls(&w);

        // Interleave the two modes and flip their order every
        // iteration, so slow drift (frequency scaling, neighbours on
        // a shared host) and within-pair warm-up bias hit both
        // equally; keep the minimum of each, the best estimate of
        // the true floor.
        let mut t_batch = Duration::MAX;
        let mut t_stream = Duration::MAX;
        let mut p_batch = None;
        let mut p_stream = None;
        for i in 0..RUNS {
            let batch = || timed(|| systrace::run_predicted(&cfg, &w, arith));
            let stream = || {
                timed(|| systrace::run_predicted_streaming(&cfg, &w, arith, PipelineCfg::default()))
            };
            let ((tb, pb), (ts, ps)) = if i % 2 == 0 {
                let b = batch();
                let s = stream();
                (b, s)
            } else {
                let s = stream();
                let b = batch();
                (b, s)
            };
            t_batch = t_batch.min(tb);
            t_stream = t_stream.min(ts);
            p_batch = Some(pb);
            p_stream = Some(ps);
        }
        let (p_batch, p_stream) = (p_batch.expect("RUNS > 0"), p_stream.expect("RUNS > 0"));
        assert!(
            same_prediction(&p_batch, &p_stream),
            "{name}: streaming diverged from batch"
        );
        println!(
            "{:9} | {:>8.3}s | {:>8.3}s | {:>6.2}x | {:>12}",
            name,
            t_batch.as_secs_f64(),
            t_stream.as_secs_f64(),
            t_batch.as_secs_f64() / t_stream.as_secs_f64(),
            p_batch.trace_words,
        );
    }
    println!("{:-<60}", "");
    println!("ratio > 1: streaming wins. Identical predictions are asserted.");
    println!("The trace is never accumulated, so streaming skips batch's");
    println!("replay pass; on a single-CPU host that pass is a small slice of");
    println!("the machine run and the ratio sits at ~1.00, while extra CPUs");
    println!("let the consumer stages overlap the machine run for a real win.");
}
