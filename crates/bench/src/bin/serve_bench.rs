//! serve_bench: throughput, latency and predicate-pushdown
//! effectiveness for the `wrl-serve` trace-query service (E22).
//!
//! Three sections, each honest about its method:
//!
//! 1. **Differential** — every Table-1 workload's Ultrix system trace
//!    is served over a loopback socket and queried with a predicate
//!    panel; each wire answer is asserted bit-identical to filtering
//!    the locally decoded words. Correctness first, speed second.
//! 2. **Pushdown** — for each workload, the rarest ASID actually
//!    present is queried and the index-level block-skip ratio
//!    reported; selective ASID predicates must skip at least half
//!    the blocks, which is the point of shipping summaries in the
//!    index.
//! 3. **Latency/throughput** — per-opcode p50/p99 service latency and
//!    aggregate request throughput at 1, 4 and 16 concurrent
//!    clients against one server (default admission gate of 16, so
//!    nothing is refused; the gate itself is exercised by the
//!    loopback stress test, not timed here).
//! 4. **Pool vs reactor** — the measured 16-client p99 per opcode
//!    against the pinned thread-per-connection pool baseline (the
//!    committed `results/serve_bench.txt` before the readiness
//!    reactor landed). The reactor must hold a ≥5x improvement on
//!    the query p99, the figure the rewrite was aimed at.
//! 5. **v3 vs v4 windowed query** — the 16-client windowed-query
//!    latency for the same trace served from a v3 row store and a v4
//!    columnar store, against the pinned v3 p50 (the committed
//!    `results/serve_bench.txt` before the columnar format landed).
//!    The v4 path must hold a ≥5x improvement on that pin, the
//!    figure the columnar layout was aimed at.
//! 6. **Fabric vs single node** — the same windowed-query workload
//!    against a `wrl-fabric` coordinator fronting two block-range
//!    shards on loopback, after asserting the coordinator's panel
//!    answers bit-identical to the single node's. The coordinator
//!    adds one scatter hop per query, so this section reports the
//!    overhead factor honestly rather than claiming a speedup — on
//!    one machine the fabric buys address space and replica
//!    failover, not latency; the bound asserted is that the hop
//!    stays under 20x on p50 (catastrophic regressions like a
//!    reconnect-per-query would blow far past it).
//!
//! Usage: `serve_bench`. Regenerates `results/serve_bench.txt` via
//! stdout.

use std::sync::Arc;
use std::time::Instant;

use systrace::fabric::{split_store, Coordinator, FabricCfg, PlanKind};
use systrace::kernel::{build_system, KernelConfig};
use systrace::serve::{Catalog, Client, ServeCfg, Server};
use systrace::store::{filter_stream, BlockFormat, Predicate, TraceStore};
use systrace::trace::TraceArchive;
use wrl_trace::format::{classify, CtlOp, TraceWord};

/// Words per block: small enough that every workload trace spans many
/// blocks, so the pushdown has real targets.
const BLOCK_WORDS: usize = 64;

/// Collects one traced Ultrix run of the named workload.
fn trace_of(name: &str) -> TraceArchive {
    let w = systrace::workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(8_000_000_000);
    sys.archive(&run)
}

/// Words per ASID context, attributing each word to the context in
/// effect *after* applying it (the predicate's convention).
fn asid_census(words: &[u32]) -> Vec<(u8, u64)> {
    let mut counts = std::collections::BTreeMap::new();
    let mut asid = 0u8;
    for &w in words {
        if let TraceWord::Ctl(c) = classify(w) {
            if c.op == CtlOp::CtxSwitch {
                asid = c.payload;
            }
        }
        *counts.entry(asid).or_insert(0u64) += 1;
    }
    counts.into_iter().collect()
}

/// The correctness panel: unfiltered, two windows, and a window+ASID
/// combination per present ASID.
fn panel(n_words: u64, asids: &[(u8, u64)]) -> Vec<Predicate> {
    let mid = n_words / 2;
    let mut p = vec![
        Predicate::default(),
        Predicate {
            window: Some((0, n_words.min(256))),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid + 4096)),
            ..Predicate::default()
        },
    ];
    for &(a, _) in asids {
        p.push(Predicate {
            asid: Some(a),
            window: Some((0, n_words)),
        });
    }
    p
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    let i = ((sorted_ns.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ns[i] as f64 / 1_000.0
}

/// The thread-per-connection pool baseline: 16-client p99 per opcode
/// in microseconds, from the `results/serve_bench.txt` committed with
/// the bounded-pool server (one blocking thread per connection, one
/// `query_parallel` thread spawn per query). The reactor is measured
/// against these pins.
const POOL_P99_US_16C: [(&str, f64); 4] = [
    ("catalog", 750.4),
    ("fetch", 802.1),
    ("query", 29481.2),
    ("metrics", 7116.7),
];

/// The acceptance floor on the headline figure: the reactor's
/// 16-client query p99 must be at least this many times better than
/// the pool's.
const QUERY_P99_MIN_SPEEDUP: f64 = 5.0;

/// The 16-client windowed-query p50 in microseconds, pinned from the
/// `results/serve_bench.txt` committed with the v3 row store (reactor
/// server, linear index scan, row-at-a-time block decode). The v4
/// columnar path is measured against this pin.
const V3_QUERY_P50_US_16C: f64 = 1849.8;

/// The acceptance floor on the columnar headline figure: the v4 path's
/// 16-client windowed-query p50 must beat the pinned v3 p50 by at
/// least this factor.
const V4_QUERY_P50_MIN_SPEEDUP: f64 = 5.0;

/// Ceiling on the fabric's windowed-query p50 overhead versus the
/// single node it fronts: a generous bound that a pathological
/// coordinator (reconnecting or re-fetching per query) cannot meet.
const FABRIC_P50_MAX_OVERHEAD: f64 = 20.0;

fn main() {
    systrace::obs::register_all();
    println!("wrl-serve: loopback differential, pushdown and latency benchmark");
    println!("block size {BLOCK_WORDS} words; all traffic over 127.0.0.1 TCP");
    println!();

    // ---- 1 + 2. Differential and pushdown over all workloads ------
    println!("Differential + ASID pushdown, one Ultrix system trace per workload");
    println!(
        "{:10} | {:>8} | {:>7} | {:>5} | {:>10} | {:>7}",
        "workload", "words", "blocks", "preds", "rare asid", "skipped"
    );
    println!("{:-<62}", "");
    let mut worst_skip = f64::MAX;
    let mut worst_name = "";
    let mut sed_store = None;
    let mut sed_store_v4 = None;
    for w in systrace::workloads::all() {
        let archive = trace_of(w.name);
        let store = Arc::new(TraceStore::from_archive(&archive, BLOCK_WORDS));
        let n_blocks = store.n_blocks();
        if w.name == "sed" {
            sed_store = Some(store.clone());
            sed_store_v4 = Some(Arc::new(TraceStore::from_archive_with(
                &archive,
                BLOCK_WORDS,
                BlockFormat::Columnar,
            )));
        }
        let mut catalog = Catalog::new();
        catalog.add(w.name, store);
        let server =
            Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("server starts");
        let mut client = Client::connect(server.addr()).expect("client connects");

        let asids = asid_census(&archive.words);
        let preds = panel(archive.words.len() as u64, &asids);
        for (i, pred) in preds.iter().enumerate() {
            let expected = filter_stream(&archive.words, pred);
            let q = client
                .query(w.name, pred)
                .unwrap_or_else(|e| panic!("{} predicate {i}: {e}", w.name));
            assert_eq!(
                q.words, expected,
                "{} predicate {i}: wire answer differs from local filter",
                w.name
            );
            assert_eq!((q.blocks_decoded + q.blocks_skipped) as usize, n_blocks);
        }

        // The rarest ASID actually present is the selective predicate
        // the index summaries exist for.
        let &(rare, rare_words) = asids
            .iter()
            .min_by_key(|&&(_, n)| n)
            .expect("every trace has at least one context");
        let q = client
            .query(
                w.name,
                &Predicate {
                    asid: Some(rare),
                    ..Predicate::default()
                },
            )
            .expect("rare-asid query");
        let skip =
            f64::from(q.blocks_skipped) / (q.blocks_decoded + q.blocks_skipped).max(1) as f64;
        println!(
            "{:10} | {:>8} | {:>7} | {:>5} | {:>4} ({:>3.0}%) | {:>6.1}%",
            w.name,
            archive.words.len(),
            n_blocks,
            preds.len(),
            rare,
            100.0 * rare_words as f64 / archive.words.len() as f64,
            100.0 * skip,
        );
        if skip < worst_skip {
            worst_skip = skip;
            worst_name = w.name;
        }
        server.shutdown();
    }
    println!("{:-<62}", "");
    println!(
        "worst skip ratio {:.1}% ({worst_name}); every wire answer matched the local filter",
        100.0 * worst_skip
    );
    assert!(
        worst_skip >= 0.5,
        "selective ASID predicates must skip >= 50% of blocks (got {:.1}% on {worst_name})",
        100.0 * worst_skip
    );
    println!();

    // ---- 3. Latency and throughput by opcode and client count -----
    let store = sed_store
        .clone()
        .expect("sed is among the twelve workloads");
    let n_blocks = store.n_blocks() as u32;
    let n_words = store.n_words;
    let mut catalog = Catalog::new();
    catalog.add("sed", store);
    let server = Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("server starts");
    let addr = server.addr();

    const REQS_PER_CLIENT: usize = 200;
    println!("Service latency on the sed trace, {REQS_PER_CLIENT} requests per client");
    println!(
        "{:8} | {:>7} | {:>9} | {:>9} | {:>11}",
        "opcode", "clients", "p50 us", "p99 us", "req/s"
    );
    println!("{:-<54}", "");
    let mut p99_16c: Vec<(&str, f64)> = Vec::new();
    for opcode in ["catalog", "fetch", "query", "metrics"] {
        for clients in [1usize, 4, 16] {
            let t0 = Instant::now();
            let lat: Vec<u64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        s.spawn(move || {
                            let mut client = Client::connect(addr).expect("client connects");
                            let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                            for i in 0..REQS_PER_CLIENT {
                                let t = Instant::now();
                                match opcode {
                                    "catalog" => {
                                        client.catalog().expect("catalog");
                                    }
                                    "fetch" => {
                                        // One block, rotating through the store.
                                        let at = ((c * REQS_PER_CLIENT + i) as u32) % n_blocks;
                                        client.fetch("sed", at, 1).expect("fetch");
                                    }
                                    "query" => {
                                        // A 4k-word window, rotating.
                                        let lo = (c * REQS_PER_CLIENT + i) as u64 * 997 % n_words;
                                        let pred = Predicate {
                                            window: Some((lo, lo + 4096)),
                                            ..Predicate::default()
                                        };
                                        client.query_retry("sed", &pred, 100).expect("query");
                                    }
                                    _ => {
                                        client.metrics().expect("metrics");
                                    }
                                }
                                lat.push(t.elapsed().as_nanos() as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                let mut all = Vec::new();
                for h in handles {
                    all.extend(h.join().expect("bench client panicked"));
                }
                all
            });
            let wall = t0.elapsed();
            let mut sorted = lat;
            sorted.sort_unstable();
            let p99 = percentile(&sorted, 99.0);
            if clients == 16 {
                p99_16c.push((opcode, p99));
            }
            println!(
                "{:8} | {:>7} | {:>9.1} | {:>9.1} | {:>11.0}",
                opcode,
                clients,
                percentile(&sorted, 50.0),
                p99,
                sorted.len() as f64 / wall.as_secs_f64(),
            );
        }
    }
    println!("{:-<54}", "");
    println!("fetch ships one compressed block per request; query decodes a");
    println!("4096-word window server-side and ships only the matching words.");
    println!("All three client counts fit the default 16-slot admission gate.");
    server.shutdown();
    println!();

    // ---- 4. Pool baseline vs reactor ------------------------------
    println!("Pool (thread-per-connection, pinned) vs reactor, 16-client p99");
    println!(
        "{:8} | {:>12} | {:>12} | {:>8}",
        "opcode", "pool p99 us", "react p99 us", "speedup"
    );
    println!("{:-<48}", "");
    let mut query_speedup = 0.0;
    for (opcode, pool) in POOL_P99_US_16C {
        let &(_, reactor) = p99_16c
            .iter()
            .find(|(o, _)| *o == opcode)
            .expect("every opcode was timed at 16 clients");
        let speedup = pool / reactor;
        if opcode == "query" {
            query_speedup = speedup;
        }
        println!("{opcode:8} | {pool:>12.1} | {reactor:>12.1} | {speedup:>7.1}x");
    }
    println!("{:-<48}", "");
    println!(
        "query p99 speedup {query_speedup:.1}x (floor {QUERY_P99_MIN_SPEEDUP:.0}x): the pool \
         spawned one thread per"
    );
    println!("connection and one more per query; the reactor multiplexes every");
    println!("connection onto a fixed set of event loops with no per-request");
    println!("spawns, and the carryless-multiply CRC (table fallback elsewhere)");
    println!("with the bulk word codec cut frame hashing to under a microsecond");
    println!("per 16 KiB side.");
    assert!(
        query_speedup >= QUERY_P99_MIN_SPEEDUP,
        "reactor query p99 at 16 clients must be >= {QUERY_P99_MIN_SPEEDUP}x better than the \
         pool baseline (got {query_speedup:.1}x)"
    );
    println!();

    // ---- 5. v3 vs v4 windowed query at 16 clients -----------------
    println!("Windowed 4096-word query on the sed trace, 16 clients, best of 3");
    println!(
        "{:12} | {:>9} | {:>9} | {:>13}",
        "store format", "p50 us", "p99 us", "vs pinned v3"
    );
    println!("{:-<52}", "");
    let v3 = sed_store.expect("sed is among the twelve workloads");
    let v4 = sed_store_v4.expect("sed is among the twelve workloads");
    let fabric_store = Arc::clone(&v4);
    let mut v4_speedup = 0.0;
    for (tag, s) in [("v3 row", v3), ("v4 columnar", v4)] {
        let n_words = s.n_words;
        let mut catalog = Catalog::new();
        catalog.add("sed", s);
        let server =
            Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("server starts");
        let addr = server.addr();
        let (mut best_p50, mut best_p99) = (f64::MAX, f64::MAX);
        for _ in 0..3 {
            let lat: Vec<u64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..16)
                    .map(|c: usize| {
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("client connects");
                            let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                            for i in 0..REQS_PER_CLIENT {
                                let lo = (c * REQS_PER_CLIENT + i) as u64 * 997 % n_words;
                                let pred = Predicate {
                                    window: Some((lo, lo + 4096)),
                                    ..Predicate::default()
                                };
                                let t = Instant::now();
                                client.query_retry("sed", &pred, 100).expect("query");
                                lat.push(t.elapsed().as_nanos() as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                let mut all = Vec::new();
                for h in handles {
                    all.extend(h.join().expect("bench client panicked"));
                }
                all
            });
            let mut sorted = lat;
            sorted.sort_unstable();
            best_p50 = best_p50.min(percentile(&sorted, 50.0));
            best_p99 = best_p99.min(percentile(&sorted, 99.0));
        }
        server.shutdown();
        let vs_pin = V3_QUERY_P50_US_16C / best_p50;
        if tag == "v4 columnar" {
            v4_speedup = vs_pin;
        }
        println!("{tag:12} | {best_p50:>9.1} | {best_p99:>9.1} | {vs_pin:>12.1}x");
    }
    println!("{:-<52}", "");
    println!(
        "v4 p50 speedup {v4_speedup:.1}x over the pinned v3 p50 of {V3_QUERY_P50_US_16C:.1} us \
         (floor {V4_QUERY_P50_MIN_SPEEDUP:.0}x):"
    );
    println!("the binary-searched index prunes the 4096-word window to its ~65");
    println!("blocks without scanning all entries, and the per-archive");
    println!("decoded-block cache turns the repeat decodes a served archive sees");
    println!("into row-range copies once warm (ASID filters still resolve from");
    println!("the tag and control columns alone before touching the cache).");
    assert!(
        v4_speedup >= V4_QUERY_P50_MIN_SPEEDUP,
        "v4 windowed-query p50 at 16 clients must be >= {V4_QUERY_P50_MIN_SPEEDUP}x better than \
         the pinned v3 p50 (got {v4_speedup:.1}x)"
    );
    println!();

    // ---- 6. Fabric coordinator vs the single node it fronts -------
    println!("Fabric (2 block-range shards) vs single node, same windowed load");
    let (manifest, shard_stores) =
        split_store(&fabric_store, "sed", 2, PlanKind::BlockRange).expect("sed store splits");
    let mut shard_servers = Vec::new();
    let mut endpoints = Vec::new();
    for (entry, shard) in manifest.shards.iter().zip(shard_stores) {
        let mut c = Catalog::new();
        c.add(entry.name.clone(), Arc::new(shard));
        let srv = Server::start("127.0.0.1:0", c, ServeCfg::default()).expect("shard starts");
        endpoints.push(vec![srv.addr()]);
        shard_servers.push(srv);
    }
    let coord = Coordinator::start("127.0.0.1:0", manifest, endpoints, FabricCfg::default())
        .expect("coordinator starts");
    let mut single_catalog = Catalog::new();
    single_catalog.add("sed", Arc::clone(&fabric_store));
    let single =
        Server::start("127.0.0.1:0", single_catalog, ServeCfg::default()).expect("server starts");

    // Correctness before clocks: the coordinator must answer the
    // whole predicate panel bit-identically to the single node.
    {
        let mut cf = Client::connect(coord.addr()).expect("client connects");
        let mut cs = Client::connect(single.addr()).expect("client connects");
        let asids: Vec<(u8, u64)> = (0..4).map(|a| (a, 0)).collect();
        for (i, pred) in panel(fabric_store.n_words, &asids).iter().enumerate() {
            let f = cf.query("sed", pred).expect("fabric query");
            let s = cs.query("sed", pred).expect("single query");
            assert_eq!(
                f.words, s.words,
                "predicate {i}: fabric differs from single node"
            );
            assert_eq!(
                f.blocks_decoded, s.blocks_decoded,
                "predicate {i}: pruning differs"
            );
        }
    }

    println!(
        "{:12} | {:>9} | {:>9} | {:>12}",
        "topology", "p50 us", "p99 us", "p50 overhead"
    );
    println!("{:-<52}", "");
    let mut p50s = Vec::new();
    for (tag, addr) in [("single", single.addr()), ("fabric 2x", coord.addr())] {
        let n_words = fabric_store.n_words;
        let (mut best_p50, mut best_p99) = (f64::MAX, f64::MAX);
        for _ in 0..3 {
            let lat: Vec<u64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..16)
                    .map(|c: usize| {
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("client connects");
                            let mut lat = Vec::with_capacity(REQS_PER_CLIENT);
                            for i in 0..REQS_PER_CLIENT {
                                let lo = (c * REQS_PER_CLIENT + i) as u64 * 997 % n_words;
                                let pred = Predicate {
                                    window: Some((lo, lo + 4096)),
                                    ..Predicate::default()
                                };
                                let t = Instant::now();
                                client.query_retry("sed", &pred, 100).expect("query");
                                lat.push(t.elapsed().as_nanos() as u64);
                            }
                            lat
                        })
                    })
                    .collect();
                let mut all = Vec::new();
                for h in handles {
                    all.extend(h.join().expect("bench client panicked"));
                }
                all
            });
            let mut sorted = lat;
            sorted.sort_unstable();
            best_p50 = best_p50.min(percentile(&sorted, 50.0));
            best_p99 = best_p99.min(percentile(&sorted, 99.0));
        }
        p50s.push(best_p50);
        let overhead = best_p50 / p50s[0];
        println!("{tag:12} | {best_p50:>9.1} | {best_p99:>9.1} | {overhead:>11.1}x");
    }
    println!("{:-<52}", "");
    let overhead = p50s[1] / p50s[0];
    println!(
        "fabric p50 overhead {overhead:.1}x (ceiling {FABRIC_P50_MAX_OVERHEAD:.0}x): every query \
         pays one extra"
    );
    println!("network hop plus a manifest prune, and windowed queries that cross");
    println!("the shard seam fan out to both nodes; what the fabric buys is not");
    println!("single-machine latency but horizontal address space — each shard");
    println!("holds half the blocks — and mid-query replica failover.");
    assert!(
        overhead <= FABRIC_P50_MAX_OVERHEAD,
        "fabric windowed-query p50 overhead must stay <= {FABRIC_P50_MAX_OVERHEAD}x the single \
         node (got {overhead:.1}x)"
    );
    coord.shutdown();
    single.shutdown();
    for srv in shard_servers {
        srv.shutdown();
    }
}
