//! §3.4: the Tunix result — "kernel cycles per instruction (CPI) were
//! three times user CPI, and had a significant effect on overall CPI."
//! Regenerated from the trace-driven cache simulation, split by
//! address space.

use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{MemSim, SimCfg, UtlbSynth};

fn main() {
    println!("Kernel vs user CPI from trace-driven simulation (Ultrix)");
    println!(
        "{:9} | {:>8} {:>8} {:>7} | {:>6}",
        "", "user CPI", "kern CPI", "ratio", "kern%"
    );
    println!("{:-<50}", "");
    for w in wrl_bench::selected_workloads() {
        let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
        let run = sys.run(8_000_000_000);
        let mut parser = sys.parser();
        let mut sim = MemSim::new(
            SimCfg {
                utlb: Some(UtlbSynth::wrl_kernel()),
                ..SimCfg::default()
            },
            sys.pagemap.clone(),
        );
        parser.parse_all(&run.trace_words, &mut sim);
        let s = &sim.stats;
        println!(
            "{:9} | {:>8.2} {:>8.2} {:>6.2}x | {:>5.1}%",
            w.name,
            s.user_cpi(),
            s.kernel_cpi(),
            s.kernel_cpi() / s.user_cpi().max(0.01),
            100.0 * s.kernel_irefs as f64 / s.insts().max(1) as f64,
        );
    }
    println!("{:-<50}", "");
    println!("Tunix (paper): kernel CPI ~ 3x user CPI");
}
