//! Figure 2: "Instrumentation by epoxie" — the paper's before/after
//! listing, regenerated from a real run of the instrumenter on the
//! same `fopen` prologue.

use systrace::epoxie::{build_traced, FullPolicy, Mode};
use systrace::isa::asm::Asm;
use systrace::isa::disasm::disasm_word;
use systrace::isa::link::Layout;
use systrace::isa::reg::*;

fn main() {
    // The paper's example sequence.
    let mut a = Asm::new("fig2");
    a.global_label("main"); // entry shim
    a.jal("fopen");
    a.nop();
    a.break_(0);
    a.global_label("fopen");
    a.addiu(SP, SP, -24);
    a.sw(RA, 20, SP); // the hazard: a store that reads ra
    a.sw(A0, 24, SP);
    a.jal("_findiop");
    a.sw(A1, 28, SP); // memory instruction in the delay slot
    a.global_label("_findiop");
    a.jr(RA);
    a.nop();
    let objs = [a.finish()];

    let prog = build_traced(
        &objs,
        Layout::user(),
        "main",
        Mode::Modified,
        FullPolicy::Syscall,
    )
    .expect("instruments");

    let show = |title: &str, exe: &systrace::isa::Executable, from: u32, to: u32| {
        println!("{title}");
        let mut i = 0;
        let mut va = from;
        while va < to {
            let w = exe.text_word(va).unwrap();
            println!("  i+{:<3} {:#010x}: {}", i, va, disasm_word(w));
            va += 4;
            i += 1;
        }
        println!();
    };

    let of = prog.orig.exe.sym("fopen").unwrap();
    let oe = prog.orig.exe.sym("_findiop").unwrap();
    show("a) Before instrumentation (fopen):", &prog.orig.exe, of, oe);
    let nf = prog.instr.exe.sym("fopen").unwrap();
    let ne = prog.instr.exe.sym("_findiop").unwrap();
    show(
        "b) After instrumentation by epoxie:",
        &prog.instr.exe,
        nf,
        ne,
    );
    println!(
        "text: {} -> {} bytes (x{:.2}; the block preamble is `sw ra,124(xreg3); jal bbtrace; li zero,n`,\n\
         each memory instruction gains a `jal memtrace`, and the ra-hazard store gets the\n\
         dummy-store treatment of §3.2)",
        prog.expansion.orig_bytes, prog.expansion.new_bytes,
        prog.expansion.factor()
    );
}
