//! Table 3: "TLB misses, measured and predicted" — the hardware UTLB
//! counter of the uninstrumented run vs the trace-driven TLB
//! simulation, for both systems.

fn main() {
    println!("Table 3: user TLB misses, measured and predicted");
    println!(
        "{:9} | {:>10} {:>10} | {:>10} {:>10}",
        "", "Mach meas", "Mach pred", "Ultx meas", "Ultx pred"
    );
    println!("{:-<58}", "");
    for w in wrl_bench::selected_workloads() {
        let (mach, ultrix) = wrl_bench::validate_both(&w);
        println!(
            "{:9} | {:>10} {:>10} | {:>10} {:>10}",
            w.name,
            mach.measured.utlb_misses,
            mach.predicted.utlb_misses,
            ultrix.measured.utlb_misses,
            ultrix.predicted.utlb_misses,
        );
    }
    println!("{:-<58}", "");
    println!("error sources: explicit kernel TLB writes are invisible to the simulator,");
    println!("and both TLBs use random replacement (§5.2)");
}
