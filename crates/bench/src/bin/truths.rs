//! §4.4 "Truths Revealed": the tracing/simulation system exposing real
//! system misbehaviour.
//!
//! 1. The Mach I-cache-flush bug: "a bug in the instruction cache
//!    flushing routine caused an excessive number of uncached
//!    instruction references" — reproduced by a flush routine that
//!    isolates the cache and forgets to de-isolate it.
//! 2. "Conservative write policies in Ultrix induce greatly increased
//!    I/O delays" — write-through vs delayed file writes.

use systrace::kernel::KernelConfig;

fn main() {
    let w = systrace::workloads::by_name("sed").unwrap();

    println!("1) I-cache flush bug (uncached instruction fetches, untraced Ultrix, sed)");
    for (label, bug) in [("correct flush", false), ("buggy flush", true)] {
        let mut cfg = KernelConfig::ultrix();
        cfg.icache_flush_bug = bug;
        let m = systrace::run_measured(&cfg, &w);
        println!(
            "   {label:>14}: {:>8} uncached ifetches, {:>9.4} s",
            m.uncached_ifetches, m.seconds
        );
    }
    println!("   (the excess uncached references are precisely how the Mach bug showed up)");

    println!();
    println!("2) Conservative vs delayed write policy (untraced Ultrix)");
    for wl in ["sed", "compress", "gcc"] {
        let w = systrace::workloads::by_name(wl).unwrap();
        let mut row = String::new();
        for (label, conservative) in [("conservative", true), ("delayed", false)] {
            let mut cfg = KernelConfig::ultrix();
            cfg.conservative_write = conservative;
            let m = systrace::run_measured(&cfg, &w);
            row += &format!(
                "  {label}: {:>8.4} s ({:>3} disk ops)",
                m.seconds, m.disk_ops
            );
        }
        println!("   {wl:9}{row}");
    }
    println!(
        "   (write-through blocks the writer on every block: the paper's inflated I/O delays)"
    );
}
