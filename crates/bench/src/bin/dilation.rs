//! §4.1: time and memory dilation.
//!
//! Measures the traced system's slowdown factor, checks that the
//! 1/12-rate clock delivers tick-per-work parity with the untraced
//! system, and shows why the UTLB handler must be synthesized rather
//! than traced (traced text is ~2x, so traced-system TLB behaviour
//! differs from the untraced system's).

use std::sync::Arc;
use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{MemSim, SimCfg, UtlbSynth};

fn main() {
    println!("Time dilation and clock scaling (Ultrix)");
    println!(
        "{:9} | {:>8} | {:>9} {:>9} | {:>7} {:>7} | {:>5} {:>5}",
        "", "slowdown", "unt tick", "trc tick", "unt TLB", "trc TLB", "uKTLB", "tKTLB"
    );
    println!("{:-<80}", "");
    for w in wrl_bench::selected_workloads() {
        let m = systrace::run_measured(&KernelConfig::ultrix(), &w);
        let mut tsys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
        let trun = tsys.run(6_000_000_000);
        assert_eq!(trun.exit_code, m.exit_code);
        let t = &tsys.machine.counters;
        println!(
            "{:9} | {:>7.1}x | {:>9} {:>9} | {:>7} {:>7} | {:>5} {:>5}",
            w.name,
            t.cycles as f64 / m.cycles.max(1) as f64,
            m.clock_ticks,
            tsys.machine.dev.clock_ticks,
            m.utlb_misses,
            t.utlb_misses,
            m.ktlb_misses,
            t.ktlb_misses,
        );
    }
    println!("{:-<80}", "");
    println!("KTLB misses stay in the same band traced vs untraced: text growth never");
    println!("changes the number of page-table pages (each maps 4 MB), the §4.1 argument.");
    println!("trc ticks ~ unt ticks x slowdown/12 (the divisor compensates per-work tick rate);");
    println!("trc TLB differs from unt TLB because instrumented text is ~2x — hence §4.1's");
    println!("UTLB-miss *synthesis* in the simulator instead of tracing the real handler.");

    // Synthesis ablation: predicted time with and without synthesis.
    let w = systrace::workloads::by_name("compress").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(6_000_000_000);
    for (label, synth) in [
        ("with synthesis", Some(UtlbSynth::wrl_kernel())),
        ("without", None),
    ] {
        let mut parser = sys.parser();
        let mut sim = MemSim::new(
            SimCfg {
                utlb: synth,
                ..SimCfg::default()
            },
            sys.pagemap.clone(),
        );
        parser.parse_all(&run.trace_words, &mut sim);
        println!(
            "compress {label:>16}: predicted UTLB misses = {:>7}, synthesized handler irefs = {}",
            sim.stats.utlb_misses, sim.stats.synth_irefs
        );
    }
    let _ = Arc::new(0);
}
