//! §4.2 / §4.4 / §5.1: page-mapping policy effects.
//!
//! "System policy in the virtual-to-physical page selection can cause
//! execution time to vary by over 10%" (tomcatv), and "the random
//! policy used by Mach 3.0 causes much greater variation in execution
//! times, with a subsequent loss of precision in time predictions."

use systrace::kernel::KernelConfig;
use systrace::memsim::Policy;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tomcatv".into());
    let w = systrace::workloads::by_name(&name).expect("workload");
    println!("Run-time spread under page-mapping policies ({name})");

    let det = systrace::run_measured(&KernelConfig::ultrix(), &w);
    println!("deterministic (Ultrix first-free): {:>9.4} s", det.seconds);

    let mut times = Vec::new();
    for seed in [0x3a11u64, 0xbeef, 0x1234, 0x9999, 0xabcd, 0x7777] {
        let mut cfg = KernelConfig::mach();
        cfg.page_policy = Policy::Random {
            seed,
            base_pfn: 0x2000,
            frames: 8192,
        };
        let m = systrace::run_measured(&cfg, &w);
        println!("random seed {seed:#06x}:              {:>9.4} s", m.seconds);
        times.push(m.seconds);
    }
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "random-policy spread: {:.4} .. {:.4} s ({:.1}% of min)",
        min,
        max,
        (max - min) / min * 100.0
    );
    println!("(the paper saw >10% variation for tomcatv and declined to publish Mach error bars)");
}
