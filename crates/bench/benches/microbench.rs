//! Criterion microbenchmarks of the tooling itself: machine
//! simulation speed, instrumentation throughput, trace parsing and
//! trace-driven simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use systrace::epoxie::{build_traced, run_traced, FullPolicy, Mode};
use systrace::isa::link::Layout;
use systrace::machine::{Config, Machine};
use systrace::memsim::{MemSim, PageMap, Policy, SimCfg};
use systrace::trace::TraceParser;

fn workload_objects() -> Vec<systrace::isa::Object> {
    systrace::workloads::by_name("yacc").unwrap().objects
}

fn bench_machine(c: &mut Criterion) {
    let w = systrace::workloads::by_name("yacc").unwrap();
    let linked = systrace::workloads::link_user(&w.objects);
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(200_000));
    g.bench_function("simulate_200k_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(Config::bare(), vec![]);
            m.load_executable(&linked.exe);
            m.set_pc(linked.exe.entry);
            m.run(200_000)
        })
    });
    g.finish();
}

fn bench_instrument(c: &mut Criterion) {
    let objs = workload_objects();
    let mut g = c.benchmark_group("epoxie");
    g.bench_function("instrument_yacc", |b| {
        b.iter(|| {
            build_traced(
                &objs,
                Layout::user(),
                "__start",
                Mode::Modified,
                FullPolicy::Syscall,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn traced_words() -> (Arc<systrace::trace::BbTable>, Vec<u32>) {
    let mut a = systrace::isa::Asm::new("loop");
    use systrace::isa::reg::*;
    a.global_label("main");
    a.la(T0, "buf");
    a.li(T1, 20_000);
    a.label("l");
    a.sw(T1, 0, T0);
    a.lw(T2, 0, T0);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "l");
    a.nop();
    a.break_(0);
    a.data();
    a.label("buf");
    a.space(16);
    let prog = build_traced(
        &[a.finish()],
        Layout::user(),
        "main",
        Mode::Modified,
        FullPolicy::Syscall,
    )
    .unwrap();
    let run = run_traced(&prog, 100_000_000, |_, _| false);
    (Arc::new(prog.table), run.words)
}

fn bench_parse_and_sim(c: &mut Criterion) {
    let (table, words) = traced_words();
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(words.len() as u64));
    g.bench_function("parse_trace", |b| {
        b.iter(|| {
            let mut p = TraceParser::new(Arc::new(systrace::trace::BbTable::new()));
            p.set_user_table(0, table.clone());
            let mut sink = systrace::trace::CollectSink::default();
            p.parse_all(&words, &mut sink);
            sink.irefs.len()
        })
    });
    g.bench_function("parse_and_simulate", |b| {
        b.iter(|| {
            let mut p = TraceParser::new(Arc::new(systrace::trace::BbTable::new()));
            p.set_user_table(0, table.clone());
            let mut sim = MemSim::new(
                SimCfg::default(),
                PageMap::new(Policy::FirstFree { base_pfn: 0x100 }),
            );
            p.parse_all(&words, &mut sim);
            sim.cycles
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_machine,
    bench_instrument,
    bench_parse_and_sim
);
criterion_main!(benches);
