//! Deterministic RNG and run configuration.

/// How many cases each property runs (default 64, or `PROPTEST_CASES`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// SplitMix64: small, fast, and plenty random for test generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)`. `hi > lo` required.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_below() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_is_unit() {
        let mut r = TestRng::new(8);
        for _ in 0..1000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
