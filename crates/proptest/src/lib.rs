//! An offline, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of proptest this workspace actually uses:
//! the [`proptest!`] macro, integer/float/bool/range strategies,
//! `any::<T>()`, tuple composition, `prop_map`, [`prop_oneof!`],
//! `collection::{vec, hash_set}`, `Just`, and `ProptestConfig`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * Cases are generated from a deterministic per-test seed (the FNV
//!   hash of the test name, overridable with `PROPTEST_SEED`), so
//!   every run explores the same inputs — failures reproduce exactly
//!   with no persistence files.
//! * There is no shrinking. The failing case's inputs are printed by
//!   the assertion itself; with deterministic generation that is
//!   enough to debug.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// FNV-1a over a test name: the default per-test seed.
pub fn seed_from(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The property-test macro: each `fn name(arg in strategy, ...)` body
/// runs for `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $( $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::seed_from(concat!(module_path!(), "::", stringify!($name))),
                );
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    let run = || -> Result<(), String> {
                        $body
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!("proptest case {case} of {}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {left:?}\n right: {right:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} ({})\n  left: {left:?}\n right: {right:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+)
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {left:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i16..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            Just(99u32),
        ]) {
            prop_assert!(v < 4 || v == 99);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(crate::seed_from("x"));
        let mut b = TestRng::new(crate::seed_from("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
