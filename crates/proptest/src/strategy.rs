//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of an associated type from the test RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; at least one arm is required.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = rng.below(61) as i32 - 30;
        m * (2.0f64).powi(e)
    }
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_and_maps() {
        let mut rng = TestRng::new(3);
        let s = (0u8..10, 5u32..6).prop_map(|(a, b)| a as u32 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::new(4);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn signed_ranges() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let v = (-5i16..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }
}
