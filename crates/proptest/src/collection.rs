//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<T>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors of `element` values with lengths in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<T>` with a target size drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates hash sets of `element` values with sizes in `size`
/// (best effort: bounded retries against duplicate draws).
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    assert!(size.start < size.end, "empty size range");
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.generate(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n.saturating_mul(50) + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_pairs() {
        let mut rng = TestRng::new(1);
        let s = vec((0u32..4, 0u32..4), 1..10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
        }
    }

    #[test]
    fn set_reaches_target_size() {
        let mut rng = TestRng::new(2);
        let s = hash_set(0u32..0x2000, 1..300);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 300);
        }
    }
}
