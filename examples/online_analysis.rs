//! Online trace analysis — the paper's §3.3 workflow, end to end.
//!
//! The paper's analysis program does not archive the trace: it is a
//! *host* process that drains the in-kernel buffer whenever the
//! kernel rings the analysis doorbell, while every traced process is
//! suspended ("traced processes are inactive during trace
//! analysis... trace data is analyzed incrementally"). Here the
//! analysis program is a closure handed to [`System::run_with`]: at
//! each doorbell it feeds the drained words straight into the
//! memory-system simulator and reports running totals, so the full
//! trace never needs to exist in memory at once.
//!
//! Usage: `online_analysis [workload]` (default: compress).
//!
//! [`System::run_with`]: systrace::kernel::System::run_with

use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{MemSim, SimCfg, UtlbSynth};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "compress".into());
    let w = systrace::workloads::by_name(&name).expect("unknown workload");

    // A deliberately small in-kernel buffer (1 MB) so the doorbell
    // rings several times; the paper used 64 MB on a 96 MB machine.
    let cfg = KernelConfig {
        ktrace_bytes: 1 << 20,
        ..KernelConfig::ultrix().traced()
    };
    let mut sys = build_system(&cfg, &[&w]);

    // The analysis program: a parser wired to this system's basic
    // block tables, feeding the memory-system simulator.
    let mut parser = sys.parser();
    let simcfg = SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    };
    let mut sim = MemSim::new(simcfg, sys.pagemap.clone());

    println!("online analysis of `{name}` on traced Ultrix (1 MB buffer)\n");
    println!("phase |   words | cum insts | cum dmiss | cum utlb | kern%");
    println!("{}", "-".repeat(62));
    let mut phase = 0u32;
    let run = sys.run_with(6_000_000_000, |chunk| {
        phase += 1;
        parser.push_words(chunk, &mut sim);
        let s = &sim.stats;
        println!(
            "{:>5} | {:>7} | {:>9} | {:>9} | {:>8} | {:>4.1}%",
            phase,
            chunk.len(),
            s.insts(),
            s.dmisses,
            s.utlb_misses,
            100.0 * s.kernel_irefs as f64 / s.insts().max(1) as f64,
        );
    });
    parser.finish(&mut sim);

    println!("{}", "-".repeat(62));
    println!(
        "halted with code {}; {} analysis phases, {} total words",
        run.exit_code,
        run.drains,
        run.trace_words.len()
    );
    println!(
        "final: {} insts, user CPI {:.2}, kernel CPI {:.2}, {} parse errors",
        sim.stats.insts(),
        sim.stats.user_cpi(),
        sim.stats.kernel_cpi(),
        parser.stats.errors
    );
    assert_eq!(parser.stats.errors, 0, "trace should parse cleanly");
}
