//! Runs the measured-vs-predicted validation for one workload on one
//! OS. Usage: `validate_one [workload] [ultrix|mach]`.

use systrace::kernel::KernelConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("sed");
    let os = args.get(2).map(String::as_str).unwrap_or("ultrix");
    let w = systrace::workloads::by_name(name).expect("unknown workload");
    let cfg = match os {
        "mach" => KernelConfig::mach(),
        _ => KernelConfig::ultrix(),
    };
    let row = systrace::validate(&cfg, &w);
    let m = &row.measured;
    let p = &row.predicted;
    println!("workload   : {} on {os}", row.workload);
    println!(
        "measured   : {:>10.4} s  ({} cycles, {} insts, {} kernel)",
        m.seconds, m.cycles, m.insts, m.kernel_insts
    );
    println!(
        "predicted  : {:>10.4} s  (cpu={:.0} mem={:.0} arith={:.0} io={:.0})",
        p.seconds,
        p.prediction.cpu_cycles,
        p.prediction.mem_stall_cycles,
        p.prediction.arith_stall_cycles,
        p.prediction.io_stall_cycles
    );
    println!("time error : {:>9.2} %", row.time_error_pct());
    println!(
        "utlb misses: measured {} predicted {}",
        m.utlb_misses, p.utlb_misses
    );
    println!(
        "trace      : {} words, {} insts, dilation x{:.1}, {} transitions, {} parse errors",
        p.trace_words,
        p.trace_insts,
        p.traced_machine_insts as f64 / p.trace_insts.max(1) as f64,
        p.mode_transitions,
        p.parse_errors
    );
    println!(
        "idle       : measured {} insts, trace {} insts",
        m.idle_insts, p.idle_insts
    );
}
