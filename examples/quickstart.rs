//! Quickstart: instrument a program with epoxie, run it, and parse
//! the address trace back into a reference stream.
//!
//! This is the user-level half of the paper's pipeline in ~60 lines:
//! write a program against the W3K assembler, let epoxie rewrite its
//! object file at link time, execute the instrumented binary on the
//! machine simulator, and reconstruct the original binary's
//! interleaved instruction/data reference stream from the one-word
//! trace entries.

use std::sync::Arc;

use systrace::epoxie::{build_traced, run_traced, FullPolicy, Mode};
use systrace::isa::asm::Asm;
use systrace::isa::link::Layout;
use systrace::isa::reg::*;
use systrace::trace::{BbTable, CollectSink, Space, TraceParser};

fn main() {
    // 1. A small program: sum a table, store the running sums back.
    let mut a = Asm::new("demo");
    a.global_label("main");
    a.la(T0, "table");
    a.li(T1, 16); // elements
    a.li(T2, 0); // sum
    a.label("loop");
    a.lw(T3, 0, T0);
    a.addu(T2, T2, T3);
    a.sw(T2, 64, T0); // running sums, one cache line away
    a.addiu(T0, T0, 4);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "loop");
    a.nop();
    a.break_(0); // done
    a.data();
    a.label("table");
    for i in 1..=16 {
        a.word(i);
    }
    a.space(64);

    // 2. Link-time instrumentation: both binaries plus the static
    //    basic-block table that maps trace entries back to the
    //    uninstrumented binary.
    let prog = build_traced(
        &[a.finish()],
        Layout::user(),
        "main",
        Mode::Modified,
        FullPolicy::Syscall,
    )
    .expect("instrumentation");
    println!(
        "text: {} -> {} bytes ({:.2}x); {} basic blocks in the table",
        prog.expansion.orig_bytes,
        prog.expansion.new_bytes,
        prog.expansion.factor(),
        prog.table.len()
    );

    // 3. Run the instrumented binary; the harness plays the kernel's
    //    role (buffer setup, flush traps).
    let run = run_traced(&prog, 10_000_000, |_, _| false);
    println!(
        "traced run: {} instructions, {} trace words, {} flush traps",
        run.machine.counters.insts(),
        run.words.len(),
        run.flushes
    );

    // 4. Parse the trace back into the interleaved reference stream.
    struct Merged(Vec<String>, u64, u64);
    impl systrace::trace::TraceSink for Merged {
        fn iref(&mut self, va: u32, _s: Space, _idle: bool) {
            self.0.push(format!("I {va:#010x}"));
            self.1 += 1;
        }
        fn dref(&mut self, va: u32, store: bool, _w: systrace::isa::Width, _s: Space) {
            self.0
                .push(format!("{} {va:#010x}", if store { "S" } else { "L" }));
            self.2 += 1;
        }
    }
    let mut parser = TraceParser::new(Arc::new(BbTable::new()));
    parser.set_user_table(0, Arc::new(prog.table.clone()));
    let mut sink = Merged(Vec::new(), 0, 0);
    parser.parse_all(&run.words, &mut sink);
    assert_eq!(parser.stats.errors, 0);

    println!("first sixteen references of the reconstructed, interleaved stream:");
    for line in sink.0.iter().take(16) {
        println!("  {line}");
    }
    println!(
        "total: {} instruction refs, {} data refs — all mapped to the \
         uninstrumented binary's addresses",
        sink.1, sink.2
    );
    let _ = CollectSink::default();
}
