//! Client/server tracing under the Mach-like system (§3.6).
//!
//! The same workload binary runs unchanged, but its file system calls
//! now cross address spaces into the user-level UNIX server. The
//! system trace shows three interleaved activity streams — client,
//! server, and kernel — and the Mach-specific effects the paper
//! documents: far more user-mode (mapped) execution and therefore far
//! more user-TLB pressure than the monolithic system.

use systrace::kernel::{build_system, KernelConfig};
use systrace::trace::Space;

fn main() {
    let w = systrace::workloads::by_name("sed").unwrap();

    // Ultrix first, for contrast.
    let um = systrace::run_measured(&KernelConfig::ultrix(), &w);

    let mut sys = build_system(&KernelConfig::mach().traced(), &[&w]);
    let run = sys.run(4_000_000_000);
    assert_eq!(run.exit_code, um.exit_code, "same answer on both systems");

    let asids = sys.asids();
    println!("processes: {asids:?}");

    let mut parser = sys.parser();
    let mut sink = systrace::trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(parser.stats.errors, 0);

    let client = asids["sed"];
    let server = asids["uxserver"];
    let count = |a: u8| sink.irefs.iter().filter(|r| r.1 == Space::User(a)).count();
    println!("instruction references by activity stream:");
    println!("  client (sed)      : {:>9}", count(client));
    println!("  UNIX server       : {:>9}", count(server));
    println!("  kernel            : {:>9}", parser.stats.kernel_irefs);
    println!(
        "context switches: {} (client <-> server round trips per file operation)",
        parser.stats.ctx_switches
    );

    let mm = systrace::run_measured(&KernelConfig::mach(), &w);
    println!("\nuser TLB misses, untraced hardware counter:");
    println!(
        "  Ultrix: {:>6}   Mach: {:>6}",
        um.utlb_misses, mm.utlb_misses
    );
    println!("(the paper's Table 3 shows the same direction: Mach's mapped user-level");
    println!(" server multiplies user-TLB pressure for small workloads)");
}
