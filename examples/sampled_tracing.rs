//! Sampled tracing with `trace_ctl` — the §3.1/§3.3 kernel interface.
//!
//! "The kernel call interface supports requests to activate and
//! deactivate tracing": a program (or a controlling tool) can bracket
//! just the phases it cares about, paying the ~10x dilation only
//! there. This example builds a program with an *untraced* warm-up
//! phase (a large initialization loop) and a *traced* steady-state
//! phase, runs it both ways, and shows what sampling saves.

use systrace::isa::asm::Asm;
use systrace::isa::reg::*;
use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{MemSim, SimCfg, UtlbSynth};
use systrace::trace::layout::trace_ctl;

/// A two-phase program. When `sample` is true the warm-up phase is
/// excluded from the trace with `trace_ctl`.
fn two_phase(sample: bool) -> systrace::workloads::Workload {
    let mut a = Asm::new("phases");
    a.global_label("main");
    a.addiu(SP, SP, -8);
    a.sw(RA, 4, SP);

    if sample {
        a.li(A0, trace_ctl::STOP as i32);
        a.jal("__trace_ctl");
        a.nop();
    }
    // Warm-up: touch a 64 KB arena (the "initialization" the paper's
    // users would skip).
    a.la(T0, "arena");
    a.li(T1, 16384);
    a.label("warm");
    a.sw(T1, 0, T0);
    a.addiu(T0, T0, 4);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "warm");
    a.nop();
    if sample {
        a.li(A0, trace_ctl::START as i32);
        a.jal("__trace_ctl");
        a.nop();
    }

    // Steady state: a pointer-chase over the arena (the phase under
    // study).
    a.la(T0, "arena");
    a.li(T1, 4000);
    a.li(T2, 0);
    a.label("steady");
    a.sll(T3, T2, 2);
    a.la(T4, "arena");
    a.addu(T3, T4, T3);
    a.lw(T2, 0, T3);
    a.andi(T2, T2, 0x3fff);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "steady");
    a.nop();

    a.li(V0, 0);
    a.lw(RA, 4, SP);
    a.jr(RA);
    a.addiu(SP, SP, 8);

    a.data();
    a.align4();
    a.global_label("arena");
    a.space(64 * 1024);

    systrace::workloads::Workload {
        name: "phases",
        description: "two-phase program for sampled tracing",
        max_insts: 40_000_000,
        objects: vec![
            a.finish(),
            systrace::workloads::support::crt0(),
            systrace::workloads::support::libw3k(),
        ],
        files: vec![],
    }
}

fn run(sample: bool) -> (usize, u64, f64) {
    let w = two_phase(sample);
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(2_000_000_000);
    assert_eq!(run.exit_code, 0);
    let mut parser = sys.parser();
    let simcfg = SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    };
    let mut sim = MemSim::new(simcfg, sys.pagemap.clone());
    parser.parse_all(&run.trace_words, &mut sim);
    assert_eq!(parser.stats.errors, 0);
    (
        run.trace_words.len(),
        sim.stats.insts(),
        sim.stats.user_cpi(),
    )
}

fn main() {
    println!("sampled tracing via trace_ctl (§3.1/§3.3)\n");
    let (full_words, full_insts, full_cpi) = run(false);
    let (samp_words, samp_insts, samp_cpi) = run(true);
    println!("            |  trace words | traced insts | user CPI");
    println!("{:-<54}", "");
    println!(
        "full trace  | {:>12} | {:>12} | {:>7.2}",
        full_words, full_insts, full_cpi
    );
    println!(
        "steady only | {:>12} | {:>12} | {:>7.2}",
        samp_words, samp_insts, samp_cpi
    );
    println!("{:-<54}", "");
    println!(
        "sampling excluded the warm-up: {:.0}% fewer trace words,",
        100.0 * (1.0 - samp_words as f64 / full_words as f64)
    );
    println!("while the steady-state phase is captured identically.");
    assert!(samp_words < full_words / 2);
}
