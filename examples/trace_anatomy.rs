//! Trace anatomy: boot the traced Ultrix system, collect the system
//! trace, and annotate its first entries — control words, kernel and
//! user basic blocks, and memory references — to show how the
//! one-word-per-entry format of §3.3 carries a whole system's
//! interleaved activity.

use systrace::kernel::{build_system, KernelConfig};
use systrace::trace::{classify, CtlOp, TraceWord};

fn main() {
    let w = systrace::workloads::by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(4_000_000_000);
    println!(
        "collected {} trace words over {} analysis phases (exit code {})",
        run.trace_words.len(),
        run.drains.max(1),
        run.exit_code
    );

    let ktab = sys.kernel_table.clone().unwrap();
    let utab = sys.procs[0].table.clone().unwrap();

    println!("\nfirst 40 entries, annotated:");
    let mut kernel_depth = 0i32;
    for (i, &word) in run.trace_words.iter().take(40).enumerate() {
        let note = match classify(word) {
            TraceWord::Ctl(c) => {
                match c.op {
                    CtlOp::KEnter => kernel_depth += 1,
                    CtlOp::KExit => kernel_depth -= 1,
                    _ => {}
                }
                match c.op {
                    CtlOp::CtxSwitch => format!("-- context switch to asid {}", c.payload),
                    CtlOp::KEnter => format!("-- kernel entered (cause {})", c.payload),
                    CtlOp::KExit => "-- kernel exited".to_string(),
                    CtlOp::TraceOn => "-- trace generation on".to_string(),
                    CtlOp::TraceOff => "-- trace generation off (analysis)".to_string(),
                    CtlOp::Eof => "-- end of trace".to_string(),
                }
            }
            TraceWord::Addr(a) => {
                if let Some(info) = ktab.get(a) {
                    format!(
                        "kernel bb   (orig {:#010x}, {} insts, {} mem ops{})",
                        info.orig_vaddr,
                        info.n_insts,
                        info.ops.len(),
                        if info.flags.idle_start { ", idle" } else { "" }
                    )
                } else if let Some(info) = utab.get(a) {
                    format!(
                        "user bb     (orig {:#010x}, {} insts, {} mem ops)",
                        info.orig_vaddr,
                        info.n_insts,
                        info.ops.len()
                    )
                } else if a >= 0x8000_0000 {
                    "kernel data address".to_string()
                } else {
                    "user data address".to_string()
                }
            }
            TraceWord::BadCtl(_) => "corrupt!".to_string(),
        };
        println!("{i:4}  {word:#010x}  [depth {kernel_depth}]  {note}");
    }

    // Parse the whole trace and summarise.
    let mut parser = sys.parser();
    let mut sink = systrace::trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    let s = &parser.stats;
    println!("\nwhole-trace summary:");
    println!(
        "  kernel irefs {:>9}   user irefs {:>9}",
        s.kernel_irefs, s.user_irefs
    );
    println!(
        "  kernel drefs {:>9}   user drefs {:>9}",
        s.kernel_drefs, s.user_drefs
    );
    println!(
        "  kernel entries {}, context switches {}, idle insts {}, parse errors {}",
        s.kernel_entries, s.ctx_switches, s.idle_insts, s.errors
    );
}
