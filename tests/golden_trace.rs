//! Golden-trace regression test.
//!
//! A small `W3KTRACE` archive — the first words of a real traced sed
//! run with its full basic-block tables — is committed under
//! `tests/data/`, and the parser's statistics plus a digest of the
//! full reference stream it emits are pinned here. Any change to the
//! archive codec, the parser's interleaving rules, or the trace
//! format shows up as a digest mismatch instead of silently shifting
//! every downstream prediction.
//!
//! To regenerate after an *intentional* format/parser change:
//!
//! ```text
//! cargo test --test golden_trace regenerate -- --ignored --nocapture
//! ```
//!
//! then update the pinned constants below with the printed values.

use systrace::trace::{CollectSink, ParseStats, Space, TraceArchive};

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";
/// Trace words kept in the golden archive.
const GOLDEN_WORDS: usize = 8192;

/// FNV-1a over the parsed reference stream: order-sensitive, so any
/// reordering or dropped reference changes it.
fn digest(sink: &CollectSink) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let space_byte = |s: Space| match s {
        Space::Kernel => 0xffu8,
        Space::User(a) => a,
    };
    for &(vaddr, space, idle) in &sink.irefs {
        eat(&[1, space_byte(space), idle as u8]);
        eat(&vaddr.to_le_bytes());
    }
    for &(vaddr, store, space) in &sink.drefs {
        eat(&[2, space_byte(space), store as u8]);
        eat(&vaddr.to_le_bytes());
    }
    for &asid in &sink.switches {
        eat(&[3, asid]);
    }
    h
}

fn parse_golden() -> (ParseStats, CollectSink) {
    let archive = TraceArchive::load(GOLDEN_PATH).expect("golden archive must load");
    let mut parser = archive.parser();
    let mut sink = CollectSink::default();
    parser.parse_all(&archive.words, &mut sink);
    (parser.stats.clone(), sink)
}

// Pinned expectations. Regenerate (see module docs) only for
// intentional format or parser changes, and say why in the commit.
const PINNED_WORDS: u64 = 8192;
const PINNED_BB_RECORDS: u64 = 7524;
const PINNED_MEM_RECORDS: u64 = 646;
const PINNED_USER_IREFS: u64 = 44;
const PINNED_KERNEL_IREFS: u64 = 31917;
const PINNED_USER_DREFS: u64 = 11;
const PINNED_KERNEL_DREFS: u64 = 635;
const PINNED_KERNEL_ENTRIES: u64 = 8;
const PINNED_CTX_SWITCHES: u64 = 6;
const PINNED_ERRORS: u64 = 0;
const PINNED_DIGEST: u64 = 0xcca2_c05e_d043_5688;

#[test]
fn golden_trace_parses_to_pinned_stats() {
    let (stats, sink) = parse_golden();
    assert_eq!(stats.words, PINNED_WORDS);
    assert_eq!(stats.bb_records, PINNED_BB_RECORDS);
    assert_eq!(stats.mem_records, PINNED_MEM_RECORDS);
    assert_eq!(stats.user_irefs, PINNED_USER_IREFS);
    assert_eq!(stats.kernel_irefs, PINNED_KERNEL_IREFS);
    assert_eq!(stats.user_drefs, PINNED_USER_DREFS);
    assert_eq!(stats.kernel_drefs, PINNED_KERNEL_DREFS);
    assert_eq!(stats.kernel_entries, PINNED_KERNEL_ENTRIES);
    assert_eq!(stats.ctx_switches, PINNED_CTX_SWITCHES);
    assert_eq!(stats.errors, PINNED_ERRORS);
    assert_eq!(digest(&sink), PINNED_DIGEST, "reference stream changed");
}

#[test]
fn golden_trace_streams_to_pinned_stats() {
    // The streaming pipeline must reproduce the same pinned digest.
    let archive = TraceArchive::load(GOLDEN_PATH).expect("golden archive must load");
    let mut pipe = systrace::trace::Pipeline::new(
        archive.parser(),
        CollectSink::default(),
        systrace::trace::PipelineCfg {
            chunk_words: 512,
            workers: 3,
            ..Default::default()
        },
    );
    pipe.feed(&archive.words);
    let (report, sink) = pipe.finish();
    assert_eq!(report.parse.words, PINNED_WORDS);
    assert_eq!(report.parse.errors, PINNED_ERRORS);
    assert_eq!(digest(&sink), PINNED_DIGEST);
}

/// Regenerates `tests/data/golden.w3kt` and prints the constants to
/// pin. Run manually; never part of the default suite.
#[test]
#[ignore = "regenerates the golden archive; run only for intentional format changes"]
fn regenerate_golden_archive() {
    use systrace::kernel::{build_system, KernelConfig};
    let w = systrace::workloads::by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(6_000_000_000);
    let mut archive = sys.archive(&run);
    archive.words.truncate(GOLDEN_WORDS);
    std::fs::create_dir_all("tests/data").unwrap();
    archive.save(GOLDEN_PATH).unwrap();

    let (stats, sink) = parse_golden();
    println!("golden archive: {} bytes", archive.encode().len());
    println!("const PINNED_WORDS: u64 = {};", stats.words);
    println!("const PINNED_BB_RECORDS: u64 = {};", stats.bb_records);
    println!("const PINNED_MEM_RECORDS: u64 = {};", stats.mem_records);
    println!("const PINNED_USER_IREFS: u64 = {};", stats.user_irefs);
    println!("const PINNED_KERNEL_IREFS: u64 = {};", stats.kernel_irefs);
    println!("const PINNED_USER_DREFS: u64 = {};", stats.user_drefs);
    println!("const PINNED_KERNEL_DREFS: u64 = {};", stats.kernel_drefs);
    println!(
        "const PINNED_KERNEL_ENTRIES: u64 = {};",
        stats.kernel_entries
    );
    println!("const PINNED_CTX_SWITCHES: u64 = {};", stats.ctx_switches);
    println!("const PINNED_ERRORS: u64 = {};", stats.errors);
    println!("const PINNED_DIGEST: u64 = {:#018x};", digest(&sink));
}
