//! Loopback integration for the trace service (`wrl-serve`): every
//! answer that crosses the wire must be bit-identical to computing
//! the same thing locally.
//!
//! * The differential matrix: for the golden trace stored at block
//!   sizes 1, 7 and 4096, every predicate in a fixed panel queried
//!   over TCP returns exactly [`filter_stream`] of the locally
//!   decoded words — and the pushdown really skips blocks when the
//!   predicate is selective.
//! * Raw block fetches decompress and CRC-verify client-side back to
//!   the archive's words.
//! * Sixteen concurrent clients against a 4-inflight admission gate:
//!   every response intact, `serve.reject.busy` fires, and the
//!   inflight high-water mark never exceeds the cap.
//! * Reactor stress: 64 and then 256 concurrent clients multiplexed
//!   over two event threads — every answer still bit-identical to
//!   [`filter_stream`], Busy only ever refused (never wedged or
//!   corrupted), and a generous p99 sanity bound to catch a reactor
//!   that technically answers but has stopped multiplexing.
//! * Graceful shutdown drains in-flight requests instead of dropping
//!   them.
//!
//! The `serve.*` metric family is process-global, so tests that
//! assert on it serialize behind one mutex.

use std::sync::{Arc, Mutex, OnceLock};

use systrace::serve::{Catalog, Client, ClientCfg, ServeCfg, Server};
use systrace::store::{filter_stream, Predicate, TraceStore};
use systrace::trace::TraceArchive;

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

/// Serializes tests that assert on the shared `serve.*` metrics.
fn metrics_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn golden() -> TraceArchive {
    TraceArchive::load(GOLDEN_PATH).expect("golden archive loads")
}

/// The predicate panel: unfiltered, windowed, per-ASID, and both
/// combined — plus an ASID absent from the trace (empty result) and
/// an empty window.
fn predicate_panel(n_words: u64) -> Vec<Predicate> {
    let mid = n_words / 2;
    let mut panel = vec![
        Predicate::default(),
        Predicate {
            window: Some((0, n_words.min(100))),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid + 500)),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid)),
            ..Predicate::default()
        },
        Predicate {
            asid: Some(0xee),
            ..Predicate::default()
        },
    ];
    for asid in 0..4u8 {
        panel.push(Predicate {
            asid: Some(asid),
            ..Predicate::default()
        });
        panel.push(Predicate {
            asid: Some(asid),
            window: Some((mid / 2, mid + mid / 2)),
        });
    }
    panel
}

#[test]
fn windowed_queries_are_bit_identical_to_local_decode_at_every_block_size() {
    let _guard = metrics_lock();
    let a = golden();
    let mut catalog = Catalog::new();
    for bs in [1usize, 7, 4096] {
        catalog.add(
            format!("golden-bs{bs}"),
            Arc::new(TraceStore::from_archive(&a, bs)),
        );
    }
    let server =
        Server::start("127.0.0.1:0", catalog.clone(), ServeCfg::default()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    let rows = client.catalog().expect("catalog answers");
    assert_eq!(rows.len(), 3);
    assert!(rows.windows(2).all(|w| w[0].name <= w[1].name));
    for row in &rows {
        assert_eq!(row.n_words, a.words.len() as u64);
    }

    for bs in [1usize, 7, 4096] {
        let name = format!("golden-bs{bs}");
        let store = catalog.get(&name).unwrap();
        for (i, pred) in predicate_panel(a.words.len() as u64).iter().enumerate() {
            let expected = filter_stream(&a.words, pred);
            let q = client
                .query(&name, pred)
                .unwrap_or_else(|e| panic!("{name} predicate {i}: {e}"));
            assert_eq!(
                q.words, expected,
                "{name} predicate {i}: wire answer differs from local filter"
            );
            assert_eq!(
                (q.blocks_decoded + q.blocks_skipped) as usize,
                store.n_blocks(),
                "{name} predicate {i}: block accounting must cover the store"
            );
            // A pure window predicate at block size 1 must skip every
            // block outside the window — the pushdown at its sharpest
            // (an ASID filter would lawfully skip even more).
            if bs == 1 && pred.asid.is_none() {
                if let Some((lo, hi)) = pred.window {
                    let in_window = hi.min(a.words.len() as u64).saturating_sub(lo);
                    assert_eq!(
                        u64::from(q.blocks_decoded),
                        in_window,
                        "{name} predicate {i}: bs=1 must decode exactly the window"
                    );
                }
            }
        }
    }
    server.shutdown();
}

#[test]
fn fetched_blocks_verify_client_side_and_rebuild_the_words() {
    let _guard = metrics_lock();
    let a = golden();
    let store = Arc::new(TraceStore::from_archive(&a, 512));
    let n_blocks = store.n_blocks() as u32;
    let mut catalog = Catalog::new();
    catalog.add("golden", store);
    let server = Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    let blocks = client.fetch("golden", 0, n_blocks).expect("fetch answers");
    assert_eq!(blocks.len() as u32, n_blocks);
    let mut words = Vec::new();
    let mut at = 0u64;
    for b in &blocks {
        assert_eq!(b.first_word, at, "index offsets tile the stream");
        at += u64::from(b.words);
        words.extend(b.decode().expect("block decompresses and CRC-verifies"));
    }
    assert_eq!(words, a.words, "fetched blocks rebuild the archive");

    // Out-of-range and unknown-archive requests are typed errors.
    assert!(client.fetch("golden", n_blocks, 1).is_err());
    assert!(client.fetch("nope", 0, 1).is_err());
    server.shutdown();
}

#[test]
fn sixteen_clients_against_a_four_slot_gate_all_get_intact_answers() {
    let _guard = metrics_lock();
    let a = golden();
    // Block size 1 maximises per-query work so requests overlap.
    let store = Arc::new(TraceStore::from_archive(&a, 1));
    let mut catalog = Catalog::new();
    catalog.add("golden", store);
    let cfg = ServeCfg {
        max_inflight: 4,
        query_workers: 1,
        // Pinned: on a 1-core host the adaptive default would run
        // dispatch inline on the event threads, never overlapping
        // enough requests to exercise the 4-slot gate.
        exec_workers: 4,
        ..ServeCfg::default()
    };
    let server = Server::start("127.0.0.1:0", catalog, cfg).expect("server starts");
    let obs = server.obs().clone();
    obs.inflight.reset();
    let busy_before = obs.reject_busy.get();

    let addr = server.addr();
    let expected = Arc::new(a.words.clone());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..16)
            .map(|t| {
                let expected = expected.clone();
                s.spawn(move || {
                    let mut client =
                        Client::connect_cfg(addr, ClientCfg::default()).expect("client connects");
                    for round in 0..8 {
                        let q = client
                            .query_retry("golden", &Predicate::default(), 1000)
                            .unwrap_or_else(|e| panic!("client {t} round {round}: {e}"));
                        assert_eq!(
                            q.words, *expected,
                            "client {t} round {round}: response damaged under load"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress client panicked");
        }
    });

    assert!(
        obs.reject_busy.get() > busy_before,
        "16 clients against 4 slots must trip the admission gate"
    );
    assert!(
        obs.inflight.high() <= 4,
        "inflight high-water {} exceeded the 4-slot cap",
        obs.inflight.high()
    );
    server.shutdown();
}

/// Connects with retries: a herd of clients can transiently overflow
/// the listen backlog while the event thread is mid-pass.
fn connect_patiently(addr: std::net::SocketAddr) -> Client {
    for _ in 0..500 {
        if let Ok(c) = Client::connect_cfg(addr, ClientCfg::default()) {
            return c;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("could not connect to the loopback server");
}

/// Runs `n_clients × rounds` queries against a 2-event-thread
/// reactor, asserting every answer bit-identical to the local filter
/// and returning the observed per-request latencies in microseconds.
fn reactor_stress(n_clients: usize, rounds: usize, cfg: ServeCfg) -> Vec<u64> {
    let a = golden();
    let store = Arc::new(TraceStore::from_archive(&a, 64));
    let mut catalog = Catalog::new();
    catalog.add("golden", store);
    let server = Server::start("127.0.0.1:0", catalog, cfg).expect("server starts");
    let obs = server.obs().clone();
    obs.inflight.reset();
    let busy_before = obs.reject_busy.get();
    let addr = server.addr();

    let n_words = a.words.len() as u64;
    let panel = predicate_panel(n_words);
    let expected: Vec<Vec<u32>> = panel.iter().map(|p| filter_stream(&a.words, p)).collect();
    let latencies = Arc::new(Mutex::new(Vec::<u64>::new()));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|t| {
                let (panel, expected, latencies) = (&panel, &expected, latencies.clone());
                s.spawn(move || {
                    let mut client = connect_patiently(addr);
                    let mut mine = Vec::with_capacity(rounds);
                    for round in 0..rounds {
                        let which = (t + round) % panel.len();
                        let t0 = std::time::Instant::now();
                        let q = client
                            .query_retry("golden", &panel[which], 10_000)
                            .unwrap_or_else(|e| panic!("client {t} round {round}: {e}"));
                        mine.push(t0.elapsed().as_micros() as u64);
                        assert_eq!(
                            q.words, expected[which],
                            "client {t} round {round}: wire answer differs from local filter"
                        );
                    }
                    latencies.lock().unwrap().extend(mine);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("stress client panicked");
        }
    });

    assert!(
        obs.inflight.high() <= cfg.max_inflight as i64,
        "inflight high-water {} exceeded the {}-slot cap",
        obs.inflight.high(),
        cfg.max_inflight
    );
    assert!(
        obs.reject_busy.get() >= busy_before,
        "busy counter must never run backwards"
    );
    server.shutdown();
    let mut lat = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    assert_eq!(lat.len(), n_clients * rounds);
    lat.sort_unstable();
    lat
}

#[test]
fn sixty_four_clients_on_two_event_threads_stay_bit_identical() {
    let _guard = metrics_lock();
    let cfg = ServeCfg {
        max_inflight: 8,
        query_workers: 1,
        event_threads: 2,
        // Pinned so the executor pool size (and with it the gate
        // behaviour) does not depend on the host's core count.
        exec_workers: 4,
        ..ServeCfg::default()
    };
    let lat = reactor_stress(64, 6, cfg);
    // Sanity, not performance (serve_bench owns that): a reactor that
    // has degenerated to serving one client at a time would blow far
    // past this bound at 64 clients.
    let p99 = lat[(lat.len() * 99) / 100 - 1];
    assert!(
        p99 < 5_000_000,
        "p99 {}us: the reactor has stopped multiplexing",
        p99
    );
}

#[test]
fn two_hundred_fifty_six_clients_swamp_the_gate_but_never_get_wrong_answers() {
    let _guard = metrics_lock();
    let a = golden();
    let store = Arc::new(TraceStore::from_archive(&a, 64));
    let mut catalog = Catalog::new();
    catalog.add("golden", store);
    let cfg = ServeCfg {
        max_inflight: 8,
        query_workers: 1,
        event_threads: 2,
        // Pinned: 12 executor workers comfortably exceed the 8-slot
        // gate, so the swamp must trip Busy on every host.
        exec_workers: 12,
        ..ServeCfg::default()
    };
    let server = Server::start("127.0.0.1:0", catalog, cfg).expect("server starts");
    let obs = server.obs().clone();
    obs.inflight.reset();
    let busy_before = obs.reject_busy.get();
    let addr = server.addr();
    let expected = Arc::new(filter_stream(&a.words, &Predicate::default()));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..256)
            .map(|t| {
                let expected = expected.clone();
                s.spawn(move || {
                    let mut client = connect_patiently(addr);
                    for round in 0..2 {
                        let q = client
                            .query_retry("golden", &Predicate::default(), 10_000)
                            .unwrap_or_else(|e| panic!("client {t} round {round}: {e}"));
                        assert_eq!(
                            q.words, *expected,
                            "client {t} round {round}: response damaged under swamp load"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("swamp client panicked");
        }
    });

    assert!(
        obs.reject_busy.get() > busy_before,
        "256 clients against 8 slots must trip the admission gate"
    );
    assert!(
        obs.inflight.high() <= 8,
        "inflight high-water {} exceeded the 8-slot cap under swamp load",
        obs.inflight.high()
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_the_inflight_request() {
    let _guard = metrics_lock();
    let a = golden();
    let store = Arc::new(TraceStore::from_archive(&a, 1));
    let mut catalog = Catalog::new();
    catalog.add("golden", store);
    let server = Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("server starts");
    let addr = server.addr();
    let expected = filter_stream(&a.words, &Predicate::default());

    // Start a query, then shut the server down while it may still be
    // executing; the in-flight request must complete, not vanish.
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("client connects");
        client.query("golden", &Predicate::default())
    });
    std::thread::sleep(std::time::Duration::from_millis(2));
    server.shutdown();
    let q = worker
        .join()
        .expect("client thread panicked")
        .expect("in-flight query must be drained, not dropped");
    assert_eq!(q.words, expected);

    // After shutdown the port answers no more queries.
    let late = Client::connect(addr).and_then(|mut c| {
        c.query("golden", &Predicate::default())
            .map_err(|_| std::io::ErrorKind::Other.into())
            .map(|_| ())
    });
    assert!(late.is_err(), "a drained server must not keep serving");
}
