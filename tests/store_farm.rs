//! Store + farm integration against the pinned golden trace:
//!
//! * the committed v1 archive keeps loading, both raw and through the
//!   store layer, and v2 compression is lossless on it;
//! * compression meets the ≥3x bar the store exists for;
//! * a farm cache sweep at 1, 2 and 4 workers (both schedules) is
//!   exactly — field-for-field — equal to fifteen sequential passes;
//! * a corrupted block is detected and reported as a typed CRC/codec
//!   error, and old tooling rejects a block-store file as an
//!   unsupported version rather than corruption.

use systrace::memsim::{AssocCache, PageMap, Policy, SpaceKey};
use systrace::store::{replay, FarmCfg, StoreError, TraceStore, DEFAULT_BLOCK_WORDS};
use systrace::trace::{ArchiveError, Space, TraceArchive, TraceSink};

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

/// The `cache_sweep` sink, reproduced here so farm-vs-sequential
/// equality is checked on the real workhorse analysis.
#[derive(Debug)]
struct CacheStudy {
    icache: AssocCache,
    dcache: AssocCache,
    pagemap: PageMap,
    cur_asid: u8,
}

impl CacheStudy {
    fn new(size: u32, ways: usize) -> CacheStudy {
        CacheStudy {
            icache: AssocCache::new(size, 16, ways),
            dcache: AssocCache::new(size, 16, ways),
            pagemap: PageMap::new(Policy::FirstFree { base_pfn: 0x2000 }),
            cur_asid: 1,
        }
    }

    fn translate(&mut self, vaddr: u32, space: Space) -> u32 {
        match vaddr {
            0x8000_0000..=0xbfff_ffff => vaddr & 0x1fff_ffff,
            _ => {
                let key = if vaddr >= 0xc000_0000 {
                    SpaceKey::Kernel
                } else {
                    match space {
                        Space::User(a) => SpaceKey::User(a),
                        Space::Kernel => SpaceKey::User(self.cur_asid),
                    }
                };
                self.pagemap.translate(key, vaddr)
            }
        }
    }
}

impl TraceSink for CacheStudy {
    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) {
        let pa = self.translate(vaddr, space);
        self.icache.access(pa);
    }
    fn dref(&mut self, vaddr: u32, _store: bool, _w: systrace::isa::Width, space: Space) {
        let pa = self.translate(vaddr, space);
        self.dcache.access(pa);
    }
    fn ctx_switch(&mut self, asid: u8) {
        self.cur_asid = asid;
    }
}

/// The fifteen `cache_sweep` geometries.
fn geometries() -> Vec<(u32, usize)> {
    [16u32 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10]
        .into_iter()
        .flat_map(|size| [1usize, 2, 4].into_iter().map(move |ways| (size, ways)))
        .collect()
}

fn golden_store() -> TraceStore {
    TraceStore::load(GOLDEN_PATH).expect("golden archive loads through the store layer")
}

/// Fifteen independent sequential passes — the pre-farm behaviour.
fn sequential_baseline(a: &TraceArchive) -> Vec<CacheStudy> {
    geometries()
        .into_iter()
        .map(|(size, ways)| {
            let mut study = CacheStudy::new(size, ways);
            a.parser().parse_all(&a.words, &mut study);
            study
        })
        .collect()
}

fn assert_identical(farmed: &[CacheStudy], baseline: &[CacheStudy]) {
    assert_eq!(farmed.len(), baseline.len());
    for (i, (f, b)) in farmed.iter().zip(baseline).enumerate() {
        assert_eq!(
            f.icache.accesses, b.icache.accesses,
            "geometry {i} iaccesses"
        );
        assert_eq!(f.icache.misses, b.icache.misses, "geometry {i} imisses");
        assert_eq!(
            f.dcache.accesses, b.dcache.accesses,
            "geometry {i} daccesses"
        );
        assert_eq!(f.dcache.misses, b.dcache.misses, "geometry {i} dmisses");
        assert_eq!(f.cur_asid, b.cur_asid, "geometry {i} final asid");
    }
}

#[test]
fn golden_v1_loads_unchanged_and_v2_is_lossless() {
    let a = TraceArchive::load(GOLDEN_PATH).expect("raw v1 load must keep working");
    let store = golden_store();
    assert_eq!(store.n_words as usize, a.words.len());
    assert_eq!(store.words().expect("all CRCs hold"), a.words);
    // And a full v2 disk round-trip changes nothing.
    let back = TraceStore::decode(&store.encode()).expect("own v2 encoding decodes");
    let restored = back.to_archive().expect("v2 decompresses");
    assert_eq!(restored.words, a.words);
    assert_eq!(restored.kernel_table.len(), a.kernel_table.len());
}

#[test]
fn golden_compresses_at_least_3x() {
    let store = golden_store();
    let raw = store.raw_bytes();
    let comp = store.compressed_bytes();
    assert!(
        comp * 3 <= raw,
        "block area must be >=3x smaller than the raw words: {comp} vs {raw} bytes"
    );
}

#[test]
fn farm_sweep_is_bit_identical_for_1_2_4_workers() {
    let a = TraceArchive::load(GOLDEN_PATH).unwrap();
    let store = golden_store();
    let baseline = sequential_baseline(&a);
    for workers in [1usize, 2, 4] {
        for shared_parse in [true, false] {
            let sinks = geometries()
                .into_iter()
                .map(|(size, ways)| CacheStudy::new(size, ways))
                .collect();
            let cfg = FarmCfg {
                workers,
                shared_parse,
                batch_events: 1000, // force many batches on 8k words
                ..FarmCfg::default()
            };
            let (report, farmed) = replay(&store, sinks, cfg)
                .unwrap_or_else(|e| panic!("replay workers={workers}: {e}"));
            assert_identical(&farmed, &baseline);
            assert_eq!(report.workers, workers);
            assert_eq!(report.sinks, 15);
            assert_eq!(report.words, store.n_words);
            assert_eq!(report.stats.errors, 0);
        }
    }
}

#[test]
fn corrupted_block_is_detected_and_reported() {
    let store = golden_store();
    let mut bytes = store.encode();
    // Corrupt the middle of the block area, located via the trailer
    // (the index sits right after the blocks).
    let tail_at = bytes.len() - systrace::store::TRAILER_BYTES;
    let index_pos =
        u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
    let blocks_len = store.compressed_bytes() as usize;
    bytes[index_pos - blocks_len / 2] ^= 0x40;
    let bad = TraceStore::decode(&bytes).expect("framing is still intact");
    let sinks = vec![CacheStudy::new(16 << 10, 1)];
    let err = replay(&bad, sinks, FarmCfg::default()).expect_err("corruption must surface");
    match err {
        StoreError::CrcMismatch { block, want, got } => {
            assert!(block < bad.n_blocks());
            assert_ne!(want, got);
        }
        StoreError::BlockCodec { block, .. } => assert!(block < bad.n_blocks()),
        other => panic!("wrong error type: {other}"),
    }
}

#[test]
fn v1_tooling_rejects_store_encodings_as_unsupported_version() {
    let store = golden_store();
    let encoded = store.encode();
    match TraceArchive::decode(&encoded) {
        Err(ArchiveError::UnsupportedVersion(v)) => {
            assert_eq!(v, systrace::store::STORE_VERSION)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // The store layer reads every version.
    assert_eq!(
        TraceStore::decode_any(&encoded).unwrap().n_words,
        store.n_words
    );
    assert_eq!(store.block_words as usize, DEFAULT_BLOCK_WORDS);
}
