//! Differential validation of the streaming pipeline: for real
//! system traces, the streaming analysis must produce *bit-identical*
//! `ParseStats` and `SimStats` to the batch `parse_all` path, for
//! every tested chunk size and consumer-thread count. This is the
//! pipeline's non-negotiable invariant — chunking and threading are
//! allowed to change wall time, never results.
//!
//! One traced machine run per workload supplies the words; the same
//! words then go through the batch reference once and through the
//! pipeline for each (chunk size × worker count) combination.

use systrace::kernel::{build_system, KernelConfig, System};
use systrace::memsim::{MemSim, SimCfg, SimStats, UtlbSynth};
use systrace::trace::{ParseStats, Pipeline, PipelineCfg};

/// Mirrors the harness's simulator wiring (`predict_from_run`).
fn fresh_sim(sys: &System) -> (SimCfg, MemSim) {
    let simcfg = SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    };
    let mut pagemap = sys.pagemap.clone();
    for (token, asid) in sys.thread_parents() {
        pagemap.duplicate_space(
            systrace::memsim::SpaceKey::User(asid),
            systrace::memsim::SpaceKey::User(token),
        );
    }
    let sim = MemSim::new(simcfg.clone(), pagemap);
    (simcfg, sim)
}

/// Batch reference: `parse_all` into a fresh simulator.
fn batch_reference(sys: &System, words: &[u32]) -> (ParseStats, SimStats, u64) {
    let mut parser = sys.parser();
    let (_, mut sim) = fresh_sim(sys);
    parser.parse_all(words, &mut sim);
    (parser.stats.clone(), sim.stats.clone(), sim.cycles)
}

fn check_workload(name: &str, cfg: KernelConfig) {
    let w = systrace::workloads::by_name(name).unwrap();
    let mut sys = build_system(&cfg.traced(), &[&w]);
    let run = sys.run(6_000_000_000);
    assert!(
        run.trace_words.len() > 100_000,
        "{name}: trace too small to be a meaningful differential"
    );

    let full = &run.trace_words[..];
    // Chunk size 1 sends one word per channel message — correct but
    // slow, so it gets a prefix; the larger sizes get the full trace.
    let prefix = &run.trace_words[..100_000];
    for &(chunk_words, words) in &[(1usize, prefix), (64, full), (4096, full)] {
        let (ref_parse, ref_sim, ref_cycles) = batch_reference(&sys, words);
        for workers in 1..=4 {
            let parser = sys.parser();
            let (_, sim) = fresh_sim(&sys);
            let mut pipe = Pipeline::new(
                parser,
                sim,
                PipelineCfg {
                    chunk_words,
                    workers,
                    ..PipelineCfg::default()
                },
            );
            pipe.feed(words);
            let (report, sim) = pipe.finish();
            let tag = format!("{name} chunk={chunk_words} workers={workers}");
            assert_eq!(report.parse, ref_parse, "{tag}: ParseStats diverged");
            assert_eq!(sim.stats, ref_sim, "{tag}: SimStats diverged");
            assert_eq!(sim.cycles, ref_cycles, "{tag}: simulated cycles diverged");
            assert_eq!(report.words, words.len() as u64, "{tag}: word accounting");
        }
    }
}

#[test]
fn streaming_matches_batch_sed() {
    check_workload("sed", KernelConfig::ultrix());
}

#[test]
fn streaming_matches_batch_yacc() {
    check_workload("yacc", KernelConfig::ultrix());
}

#[test]
fn streaming_matches_batch_egrep() {
    check_workload("egrep", KernelConfig::ultrix());
}

#[test]
fn streaming_matches_batch_tomcatv() {
    check_workload("tomcatv", KernelConfig::mach());
}

/// The full harness path end to end: a streamed run (producer thread
/// feeding the pipeline as buffers drain) predicts exactly what the
/// batch harness predicts.
#[test]
fn streamed_harness_matches_batch_harness() {
    let w = systrace::workloads::by_name("sed").unwrap();
    let cfg = KernelConfig::ultrix().traced();
    let arith = systrace::pixie_arith_stalls(&w);
    let batch = systrace::run_predicted(&cfg, &w, arith);
    for workers in [1, 2, 4] {
        let streamed = systrace::run_predicted_streaming(
            &cfg,
            &w,
            arith,
            PipelineCfg {
                workers,
                ..PipelineCfg::default()
            },
        );
        assert_eq!(streamed.prediction, batch.prediction, "workers={workers}");
        assert_eq!(streamed.utlb_misses, batch.utlb_misses);
        assert_eq!(streamed.trace_insts, batch.trace_insts);
        assert_eq!(streamed.kernel_insts, batch.kernel_insts);
        assert_eq!(streamed.idle_insts, batch.idle_insts);
        assert_eq!(streamed.trace_words, batch.trace_words);
        assert_eq!(streamed.parse_errors, batch.parse_errors);
        assert_eq!(streamed.sanity_violations, batch.sanity_violations);
        assert_eq!(streamed.exit_code, batch.exit_code);
    }
}
