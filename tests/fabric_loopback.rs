//! Loopback integration for the trace fabric (`wrl-fabric`): a
//! coordinator fronting real `wrl-serve` shard nodes must be
//! indistinguishable from one node holding the whole archive.
//!
//! * The differential matrix: the golden trace stored in both block
//!   codings (v3 row, v4 columnar), split 2 and 4 ways under both
//!   plan kinds, answers every predicate in the panel bit-identically
//!   to [`filter_stream`] *and* to the single-node store — including
//!   the decoded/skipped block accounting, so coordinator-side
//!   manifest pruning provably equals single-node pruning.
//! * Raw block fetches through the coordinator carry rewritten global
//!   offsets and rebuild the archive exactly, across shard seams.
//! * Failover: the victim shard's primary cuts its first response
//!   mid-frame (a node dying mid-query); the whole scatter unit is
//!   retried on the replica and the merged answer is still
//!   bit-identical — exactly-once rows, no duplicates, no gaps. A
//!   second query retakes the recovered primary.
//! * Typed shard errors are *forwarded*, never failed over: a shard
//!   answering with a store CRC mismatch surfaces upstream with its
//!   error code intact and the shard named — even when a clean
//!   replica is listed that could have masked the fault.
//!
//! The `fabric.*` metric family is process-global, so tests that
//! assert on it serialize behind one mutex.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use systrace::fabric::{split_store, Coordinator, FabricCfg, Manifest, PlanKind};
use systrace::serve::wire::err;
use systrace::serve::{
    Catalog, Client, ClientCfg, ServeCfg, ServeError, ServeHooks, Server, WireFate,
};
use systrace::store::{filter_stream, BlockFormat, Predicate, TraceStore};
use systrace::trace::TraceArchive;

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

/// Serializes tests that assert on the shared `fabric.*` metrics.
fn metrics_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn golden() -> TraceArchive {
    TraceArchive::load(GOLDEN_PATH).expect("golden archive loads")
}

/// Same panel as the single-node loopback suite: unfiltered,
/// windowed, per-ASID, both combined, plus guaranteed-empty cases.
fn predicate_panel(n_words: u64) -> Vec<Predicate> {
    let mid = n_words / 2;
    let mut panel = vec![
        Predicate::default(),
        Predicate {
            window: Some((0, n_words.min(100))),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid + 500)),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid)),
            ..Predicate::default()
        },
        Predicate {
            asid: Some(0xee),
            ..Predicate::default()
        },
    ];
    for asid in 0..4u8 {
        panel.push(Predicate {
            asid: Some(asid),
            ..Predicate::default()
        });
        panel.push(Predicate {
            asid: Some(asid),
            window: Some((mid / 2, mid + mid / 2)),
        });
    }
    panel
}

/// One `wrl-serve` node per block-owning shard, each publishing its
/// shard archive under the manifest's name for it.
fn spawn_shards(
    manifest: &Manifest,
    stores: Vec<TraceStore>,
) -> (Vec<Server>, Vec<Vec<SocketAddr>>) {
    let mut servers = Vec::new();
    let mut endpoints = Vec::new();
    for (entry, store) in manifest.shards.iter().zip(stores) {
        if entry.n_blocks == 0 {
            endpoints.push(Vec::new());
            continue;
        }
        let mut catalog = Catalog::new();
        catalog.add(entry.name.clone(), Arc::new(store));
        let srv = Server::start("127.0.0.1:0", catalog, ServeCfg::default())
            .expect("shard server starts");
        endpoints.push(vec![srv.addr()]);
        servers.push(srv);
    }
    (servers, endpoints)
}

#[test]
fn coordinator_is_bit_identical_to_single_node_across_shardings() {
    let a = golden();
    let n_words = a.words.len() as u64;
    for format in [BlockFormat::Row, BlockFormat::Columnar] {
        let single = TraceStore::from_archive_with(&a, 64, format);
        for kind in [PlanKind::BlockRange, PlanKind::AsidHash] {
            for n_shards in [2usize, 4] {
                let (manifest, stores) =
                    split_store(&single, "golden", n_shards, kind).expect("store splits");
                let (servers, endpoints) = spawn_shards(&manifest, stores);
                let coord =
                    Coordinator::start("127.0.0.1:0", manifest, endpoints, FabricCfg::default())
                        .expect("coordinator starts");
                let mut client = Client::connect(coord.addr()).expect("client connects");

                let rows = client.catalog().expect("catalog answers");
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].name, "golden");
                assert_eq!(rows[0].n_words, n_words);
                assert_eq!(rows[0].n_blocks as usize, single.n_blocks());

                for (i, pred) in predicate_panel(n_words).iter().enumerate() {
                    let expected = filter_stream(&a.words, pred);
                    let local = single.query(pred).expect("single-node query");
                    let q = client.query("golden", pred).unwrap_or_else(|e| {
                        panic!("{format:?}/{kind:?}/{n_shards} predicate {i}: {e}")
                    });
                    assert_eq!(
                        q.words, expected,
                        "{format:?}/{kind:?}/{n_shards} predicate {i}: \
                         scatter-gather differs from local filter"
                    );
                    assert_eq!(
                        q.blocks_decoded, local.blocks_decoded,
                        "{format:?}/{kind:?}/{n_shards} predicate {i}: \
                         fabric must decode exactly the single-node block set"
                    );
                    assert_eq!(
                        q.blocks_skipped, local.blocks_skipped,
                        "{format:?}/{kind:?}/{n_shards} predicate {i}: \
                         pruning accounting must match the single node"
                    );
                }
                coord.shutdown();
                for srv in servers {
                    srv.shutdown();
                }
            }
        }
    }
}

#[test]
fn fetched_blocks_through_the_coordinator_rebuild_the_archive() {
    let a = golden();
    let single = TraceStore::from_archive_with(&a, 128, BlockFormat::Columnar);
    let n_blocks = single.n_blocks() as u32;
    let (manifest, stores) =
        split_store(&single, "golden", 3, PlanKind::AsidHash).expect("store splits");
    let (servers, endpoints) = spawn_shards(&manifest, stores);
    let coord = Coordinator::start("127.0.0.1:0", manifest, endpoints, FabricCfg::default())
        .expect("coordinator starts");
    let mut client = Client::connect(coord.addr()).expect("client connects");

    // Fetch the whole store through the fabric: offsets must come
    // back rewritten to *global* word positions (shard stores are
    // re-tiled locally) and the payloads must CRC-verify and tile the
    // stream exactly, across every shard seam.
    let blocks = client.fetch("golden", 0, n_blocks).expect("fetch answers");
    assert_eq!(blocks.len() as u32, n_blocks);
    let mut words = Vec::new();
    let mut at = 0u64;
    for b in &blocks {
        assert_eq!(b.first_word, at, "global offsets tile the stream");
        at += u64::from(b.words);
        words.extend(b.decode().expect("block decompresses and CRC-verifies"));
    }
    assert_eq!(words, a.words, "fetched blocks rebuild the archive");

    // Out-of-range and unknown-archive requests stay typed errors.
    assert!(matches!(
        client.fetch("golden", n_blocks, 1),
        Err(ServeError::Remote { code, .. }) if code == err::BAD_REQUEST
    ));
    assert!(matches!(
        client.fetch("nope", 0, 1),
        Err(ServeError::Remote { code, .. }) if code == err::NO_SUCH_ARCHIVE
    ));
    coord.shutdown();
    for srv in servers {
        srv.shutdown();
    }
}

/// Tight timeouts so a cut connection fails over in milliseconds.
fn fast_fabric_cfg() -> FabricCfg {
    FabricCfg {
        client: ClientCfg {
            read_timeout: Duration::from_millis(5),
            max_stalls: 100,
            ..ClientCfg::default()
        },
        ..FabricCfg::default()
    }
}

#[test]
fn shard_killed_mid_query_fails_over_with_exactly_once_rows() {
    let _guard = metrics_lock();
    let a = golden();
    let single = TraceStore::from_archive_with(&a, 64, BlockFormat::Columnar);
    let (manifest, stores) =
        split_store(&single, "golden", 2, PlanKind::BlockRange).expect("store splits");
    let victim = 0usize;
    let scfg = ServeCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ServeCfg::default()
    };

    let mut servers = Vec::new();
    let mut endpoints: Vec<Vec<SocketAddr>> = Vec::new();
    for (s, store) in stores.into_iter().enumerate() {
        let store = Arc::new(store);
        let catalog_of = || {
            let mut c = Catalog::new();
            c.add(manifest.shards[s].name.clone(), Arc::clone(&store));
            c
        };
        let mut eps = Vec::new();
        if s == victim {
            // The primary dies mid-answer on its very first response:
            // the frame is cut partway through, after the shard has
            // already streamed some of the matching words.
            let hooks = ServeHooks::on_response(|seq| match seq {
                0 => WireFate::CutAfter { at: 0x9e37_79b9 },
                _ => WireFate::Deliver,
            });
            let primary = Server::start_with_hooks("127.0.0.1:0", catalog_of(), scfg, hooks)
                .expect("victim primary starts");
            eps.push(primary.addr());
            servers.push(primary);
        }
        let srv = Server::start("127.0.0.1:0", catalog_of(), scfg).expect("shard server starts");
        eps.push(srv.addr());
        servers.push(srv);
        endpoints.push(eps);
    }

    let obs = systrace::fabric::FabricObs::register();
    let failover_before = obs.failover.get();
    let coord = Coordinator::start("127.0.0.1:0", manifest, endpoints, fast_fabric_cfg())
        .expect("coordinator starts");
    let mut client = Client::connect_cfg(
        coord.addr(),
        ClientCfg {
            read_timeout: Duration::from_millis(5),
            max_stalls: 2000,
            ..ClientCfg::default()
        },
    )
    .expect("client connects");

    // The unfiltered query crosses the dying primary: the whole
    // scatter unit must be retried on the replica, so the merged
    // answer has every row exactly once despite the partial frame the
    // primary already sent.
    let expected = filter_stream(&a.words, &Predicate::default());
    let q = client
        .query("golden", &Predicate::default())
        .expect("query survives the mid-answer node loss");
    assert_eq!(q.words, expected, "failover duplicated or dropped rows");
    if systrace::obs::recording() {
        assert!(
            obs.failover.get() > failover_before,
            "the failover path must actually have run"
        );
    }

    // The primary only cut its first response; a fresh query walks
    // endpoints from the top again and retakes it.
    let q2 = client
        .query("golden", &Predicate::default())
        .expect("query after recovery");
    assert_eq!(
        q2.words, expected,
        "recovered fabric answers bit-identically"
    );

    coord.shutdown();
    for srv in servers {
        srv.shutdown();
    }
}

/// Flips one payload byte of an encoded store so that it still
/// *decodes* (the container meta-CRC covers header and index, not the
/// block payloads) but the damaged block fails its per-block CRC at
/// query time — the shard-side `store` error the fabric must forward.
fn corrupt_one_block(store: &TraceStore) -> TraceStore {
    let clean = store.encode();
    for at in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[at] ^= 0x40;
        if let Ok(s) = TraceStore::decode_any(&bytes) {
            if s.query(&Predicate::default()).is_err() {
                return s;
            }
        }
    }
    panic!("no payload byte flip produced a decodable-but-corrupt store");
}

#[test]
fn shard_side_typed_errors_forward_with_code_intact_and_no_failover() {
    let _guard = metrics_lock();
    let a = golden();
    let single = TraceStore::from_archive(&a, 64);
    let (manifest, stores) =
        split_store(&single, "golden", 2, PlanKind::BlockRange).expect("store splits");

    // Shard 0's primary serves a corrupted copy of its shard store; a
    // *clean* replica is listed right behind it. If the coordinator
    // (wrongly) treated the typed error as a node failure it would
    // fail over and mask the corruption — the query must instead
    // surface the shard's own error code with the shard named.
    let corrupt = corrupt_one_block(&stores[0]);
    let name0 = manifest.shards[0].name.clone();
    let mut bad_catalog = Catalog::new();
    bad_catalog.add(name0.clone(), Arc::new(corrupt));
    let bad = Server::start("127.0.0.1:0", bad_catalog, ServeCfg::default())
        .expect("corrupt shard server starts");
    let mut clean_catalog = Catalog::new();
    clean_catalog.add(name0.clone(), Arc::new(stores[0].clone()));
    let clean_replica = Server::start("127.0.0.1:0", clean_catalog, ServeCfg::default())
        .expect("clean replica starts");
    let mut catalog1 = Catalog::new();
    catalog1.add(manifest.shards[1].name.clone(), Arc::new(stores[1].clone()));
    let srv1 = Server::start("127.0.0.1:0", catalog1, ServeCfg::default()).expect("shard 1 starts");

    let obs = systrace::fabric::FabricObs::register();
    let failover_before = obs.failover.get();
    let remote_before = obs.remote_errors.get();
    let coord = Coordinator::start(
        "127.0.0.1:0",
        manifest.clone(),
        vec![vec![bad.addr(), clean_replica.addr()], vec![srv1.addr()]],
        FabricCfg::default(),
    )
    .expect("coordinator starts");
    let mut client = Client::connect(coord.addr()).expect("client connects");

    match client.query("golden", &Predicate::default()) {
        Err(ServeError::Remote { code, msg }) => {
            assert_eq!(
                code,
                err::STORE,
                "shard store error code must survive: {msg}"
            );
            assert!(
                msg.contains(&name0),
                "the failing shard must be named: {msg}"
            );
        }
        other => panic!("expected a forwarded shard store error, got {other:?}"),
    }
    if systrace::obs::recording() {
        assert_eq!(
            obs.failover.get(),
            failover_before,
            "a typed shard error must never trigger failover"
        );
        assert!(obs.remote_errors.get() > remote_before);
    }

    // A shard publishing the wrong archive name answers the fabric's
    // sub-request with `no_such_archive`; that too forwards verbatim.
    let mut misnamed = Catalog::new();
    misnamed.add("not-the-shard".to_string(), Arc::new(stores[0].clone()));
    let wrong =
        Server::start("127.0.0.1:0", misnamed, ServeCfg::default()).expect("misnamed shard starts");
    let coord2 = Coordinator::start(
        "127.0.0.1:0",
        manifest,
        vec![vec![wrong.addr()], vec![srv1.addr()]],
        FabricCfg::default(),
    )
    .expect("coordinator starts");
    let mut client2 = Client::connect(coord2.addr()).expect("client connects");
    match client2.query("golden", &Predicate::default()) {
        Err(ServeError::Remote { code, msg }) => {
            assert_eq!(code, err::NO_SUCH_ARCHIVE, "{msg}");
            assert!(msg.contains("shard"), "{msg}");
        }
        other => panic!("expected a forwarded no-such-archive error, got {other:?}"),
    }

    coord2.shutdown();
    coord.shutdown();
    for srv in [bad, clean_replica, srv1, wrong] {
        srv.shutdown();
    }
}
