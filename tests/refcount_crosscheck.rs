//! §4.3's reference-counting validation: "Reference counting tools
//! were used to make a dynamic count of the number of times each
//! instruction in the kernel was executed. In this way it was
//! possible to identify anomalous system activity caused by errors in
//! the tracing system."
//!
//! We run the *uninstrumented* binary with the machine's per-address
//! execution counter, derive the same per-instruction histogram from
//! the *parsed trace* of the instrumented run, and require them to
//! agree exactly — per-instruction-granularity validation on top of
//! the stream-equality check.

use std::collections::HashMap;
use std::sync::Arc;

use systrace::epoxie::{build_traced, run_traced, FullPolicy, Mode};
use systrace::isa::link::Layout;
use systrace::machine::{Config, Machine, StopEvent};
use systrace::trace::{Space, TraceParser, TraceSink};

struct Histogram(HashMap<u32, u64>);

impl TraceSink for Histogram {
    fn iref(&mut self, vaddr: u32, _s: Space, _idle: bool) {
        *self.0.entry(vaddr).or_insert(0) += 1;
    }
    fn dref(&mut self, _v: u32, _s: bool, _w: systrace::isa::Width, _sp: Space) {}
}

#[test]
fn per_instruction_counts_match_reference_counter() {
    let w = systrace::workloads::by_name("yacc").unwrap();
    let prog = build_traced(
        &w.objects,
        Layout::user(),
        "__start",
        Mode::Modified,
        FullPolicy::Syscall,
    )
    .unwrap();

    // Reference counts from the uninstrumented run.
    let mut m = Machine::new(Config::bare(), vec![]);
    m.load_executable(&prog.orig.exe);
    m.set_pc(prog.orig.exe.entry);
    m.set_refcount(true);
    let mut env = systrace::workloads::HostEnv::new(w.files.iter().cloned());
    env.brk = prog.orig.exe.brk();
    loop {
        match m.run(2_000_000_000) {
            StopEvent::Syscall(0) => {
                if !env.handle(&mut m) {
                    break;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let reference = m.refcount.take().unwrap();

    // Trace-derived counts from the instrumented run.
    let mut env2 = systrace::workloads::HostEnv::new(w.files.iter().cloned());
    env2.brk = prog.orig.exe.brk();
    let run = run_traced(&prog, 2_000_000_000, move |m, _| env2.handle(m));
    let mut parser = TraceParser::new(Arc::new(systrace::trace::BbTable::new()));
    parser.set_user_table(0, Arc::new(prog.table.clone()));
    let mut hist = Histogram(HashMap::new());
    parser.parse_all(&run.words, &mut hist);
    assert_eq!(parser.stats.errors, 0);

    // Exact per-instruction agreement across the whole text segment.
    let mut compared = 0u64;
    for va in (prog.orig.exe.text_base..prog.orig.exe.text_end()).step_by(4) {
        let want = reference.count(va);
        let got = hist.0.get(&va).copied().unwrap_or(0);
        assert_eq!(got, want, "count mismatch at {va:#010x}");
        compared += u64::from(want > 0);
    }
    assert!(compared > 150, "only {compared} live instructions compared");
    // Hot-spot identification works: the hottest instruction is in
    // the parser's inner loop and executed thousands of times.
    let (&hot, &n) = hist.0.iter().max_by_key(|(_, &n)| n).unwrap();
    assert!(n > 5_000, "hottest instruction only ran {n} times");
    assert!(hot >= prog.orig.exe.text_base && hot < prog.orig.exe.text_end());
}
