//! No-panic fuzzing of every decode entry point: seeded-random bytes
//! and mutated-golden bytes go into [`TraceArchive::decode`],
//! [`TraceStore::decode_any`], the block codec, and the reactor's
//! nonblocking frame reassembler, and the only acceptable reactions
//! are a typed error or a successful decode — never a panic, a hang,
//! or an unbounded allocation. Complements the chaos campaign
//! (`tests/chaos_campaign.rs`): the campaign classifies *outcomes*,
//! this suite hammers *totality* with far more inputs.

use proptest::collection::vec;
use proptest::prelude::*;
use systrace::serve::{wire, FrameDecoder, Request};
use systrace::store::{compress_block, decompress_block, Predicate, TraceStore};
use systrace::trace::TraceArchive;

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

/// Golden bytes in both container versions: the committed v1 archive
/// and its v2 store re-encoding, so mutations attack both decoders.
fn golden_encodings() -> Vec<Vec<u8>> {
    let v1 = std::fs::read(GOLDEN_PATH).expect("golden archive must load");
    let archive = TraceArchive::decode(&v1).expect("golden archive decodes");
    let v2 = TraceStore::from_archive(&archive, 256).encode();
    vec![v1, v2]
}

/// Applies one seeded mutation: flip some bytes, then maybe truncate.
fn mutate(bytes: &mut Vec<u8>, flips: &[(usize, u8)], cut: Option<usize>) {
    for &(at, xor) in flips {
        if !bytes.is_empty() {
            let i = at % bytes.len();
            bytes[i] ^= xor.max(1);
        }
    }
    if let Some(cut) = cut {
        if !bytes.is_empty() {
            let keep = cut % bytes.len();
            bytes.truncate(keep);
        }
    }
}

/// Every decoder eats the bytes; success and typed errors are both
/// fine, panics are the only failure.
fn decode_everything(bytes: &[u8]) {
    let _ = TraceArchive::decode(bytes);
    let _ = TraceStore::decode_any(bytes);
    for n_words in [1usize, 7, 4096] {
        let _ = decompress_block(bytes, n_words);
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(bytes in vec(any::<u8>(), 0..512)) {
        decode_everything(&bytes);
    }

    #[test]
    fn mutated_golden_bytes_never_panic_any_decoder(
        flips in vec((any::<usize>(), any::<u8>()), 1..6),
        cut in prop_oneof![
            Just(None),
            any::<usize>().prop_map(Some),
        ],
    ) {
        for golden in golden_encodings() {
            let mut bytes = golden;
            mutate(&mut bytes, &flips, cut);
            decode_everything(&bytes);
        }
    }

    #[test]
    fn codec_round_trips_at_every_block_size(words in vec(any::<u32>(), 0..5000)) {
        // The codec itself must round-trip any word content at the
        // exercised block sizes, including the degenerate 1 and the
        // prime 7 (worst cases for context reuse).
        for block in [1usize, 7, 4096] {
            for chunk in words.chunks(block) {
                let comp = compress_block(chunk);
                let back = decompress_block(&comp, chunk.len()).expect("own encoding decodes");
                prop_assert_eq!(&back, &chunk.to_vec(), "block={}", block);
            }
        }
    }

    #[test]
    fn corrupted_compressed_blocks_error_or_decode_never_panic(
        words in vec(any::<u32>(), 1..2000),
        at in any::<usize>(),
        xor in 1u8..=255,
        n_words_lie in 0usize..5000,
    ) {
        let mut comp = compress_block(&words);
        let i = at % comp.len();
        comp[i] ^= xor;
        // With the true count and with a lying count: typed error or
        // clean decode, never a panic (the CRC layer above the codec
        // is what distinguishes wrong from right content).
        let _ = decompress_block(&comp, words.len());
        let _ = decompress_block(&comp, n_words_lie);
    }
}

/// How a framed byte stream ended, in terms both the blocking reader
/// and the nonblocking reassembler can express.
#[derive(Debug, PartialEq, Eq)]
enum StreamEnd {
    /// EOF exactly at a frame boundary.
    Clean,
    /// EOF mid-frame (inside a length prefix or a body).
    Truncated,
    /// A length prefix outside `MIN_BODY..=MAX_FRAME`.
    BadLength,
}

/// Drains `bytes` through the blocking one-shot reader
/// ([`wire::read_frame`] over a cursor), collecting every complete
/// body and classifying the stream's end.
fn one_shot_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, StreamEnd) {
    let mut r = std::io::Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        match wire::read_frame(&mut r, 0) {
            Ok(wire::FrameRead::Frame(b)) => frames.push(b),
            Ok(wire::FrameRead::Eof) => return (frames, StreamEnd::Clean),
            Ok(wire::FrameRead::Idle) => unreachable!("cursors never stall"),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return (frames, StreamEnd::Truncated)
            }
            Err(_) => return (frames, StreamEnd::BadLength),
        }
    }
}

/// Drains `bytes` through the reactor's incremental [`FrameDecoder`]
/// in chunks whose sizes cycle through `sizes` — the nonblocking
/// reassembly path, fragmented at arbitrary byte boundaries.
fn reassembled_frames(bytes: &[u8], sizes: &[usize]) -> (Vec<Vec<u8>>, StreamEnd) {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut at = 0;
    for i in 0.. {
        if at >= bytes.len() {
            break;
        }
        let n = sizes[i % sizes.len()].max(1).min(bytes.len() - at);
        if dec.feed(&bytes[at..at + n], &mut frames).is_err() {
            return (frames, StreamEnd::BadLength);
        }
        at += n;
    }
    let end = if dec.mid_frame() {
        StreamEnd::Truncated
    } else {
        StreamEnd::Clean
    };
    (frames, end)
}

fn arb_archive() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| ["", "sed", "grr", "quite-a-long-archive-name"][i].to_string())
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Catalog),
        Just(Request::Metrics),
        (arb_archive(), any::<u32>(), any::<u32>()).prop_map(|(archive, first_block, n_blocks)| {
            Request::Fetch {
                archive,
                first_block,
                n_blocks,
            }
        }),
        (
            arb_archive(),
            any::<bool>(),
            any::<u8>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(archive, has_asid, asid, has_win, lo, hi)| {
                Request::Query {
                    archive,
                    pred: Predicate {
                        asid: has_asid.then_some(asid),
                        window: has_win.then_some((lo, hi)),
                    },
                }
            }),
    ]
}

fn encode_stream(reqs: &[Request]) -> Vec<u8> {
    let mut stream = Vec::new();
    for (i, r) in reqs.iter().enumerate() {
        stream.extend_from_slice(&wire::encode_request(i as u64, r));
    }
    stream
}

proptest! {
    /// The reactor's frame reassembly, fed any chunking of a valid
    /// request stream — one byte at a time, prefixes split across
    /// reads, several frames in one read — produces exactly the
    /// frames the blocking reader produces, and every body decodes
    /// back to the request that encoded it.
    #[test]
    fn any_chunking_of_valid_frames_reassembles_identically(
        reqs in vec(arb_request(), 1..5),
        sizes in vec(1usize..64, 1..16),
    ) {
        let stream = encode_stream(&reqs);
        let (oneshot, end) = one_shot_frames(&stream);
        prop_assert_eq!(end, StreamEnd::Clean);
        let (chunked, cend) = reassembled_frames(&stream, &sizes);
        prop_assert_eq!(cend, StreamEnd::Clean);
        prop_assert_eq!(&chunked, &oneshot);
        for (i, body) in chunked.iter().enumerate() {
            let (rid, back) = wire::decode_request(body).expect("valid frames decode");
            prop_assert_eq!(rid, i as u64);
            prop_assert_eq!(&back, &reqs[i]);
        }
    }

    /// Mutated streams (bit flips, truncation) through any chunking:
    /// the reassembler never panics, and it agrees with the blocking
    /// reader on both the recovered frames and how the stream ended —
    /// damage surfaces as the *same* typed condition on both paths.
    #[test]
    fn mutated_frame_streams_agree_with_the_blocking_reader(
        reqs in vec(arb_request(), 1..4),
        sizes in vec(1usize..32, 1..16),
        flips in vec((any::<usize>(), any::<u8>()), 0..4),
        cut in prop_oneof![Just(None), any::<usize>().prop_map(Some)],
    ) {
        let mut stream = encode_stream(&reqs);
        mutate(&mut stream, &flips, cut);
        let (oneshot, oend) = one_shot_frames(&stream);
        let (chunked, cend) = reassembled_frames(&stream, &sizes);
        prop_assert_eq!(cend, oend);
        prop_assert_eq!(&chunked, &oneshot);
        // Whatever bodies survived framing, decode is total: a typed
        // result either way, never a panic (the CRC distinguishes
        // right from wrong content above this layer).
        for body in &chunked {
            let _ = wire::decode_request(body);
            let _ = wire::decode_response(body);
        }
    }
}

/// A plausible live-tail push stream: the `Subscribed` ack, then a
/// run of `EVENT` batches with contiguous filtered-stream offsets,
/// ending in the zero-word end-of-feed marker — exactly what a
/// subscriber's socket carries.
fn arb_event_stream() -> impl Strategy<Value = Vec<systrace::serve::Response>> {
    use systrace::serve::Response;
    (vec(vec(any::<u32>(), 1..48), 0..6), any::<u64>()).prop_map(|(batches, seq0)| {
        let mut seq = seq0 & 0x00ff_ffff; // headroom so seq never wraps
        let mut pushes = vec![Response::Subscribed];
        for words in batches {
            let n = words.len() as u64;
            pushes.push(Response::Event { seq, words });
            seq += n;
        }
        pushes.push(Response::Event {
            seq,
            words: Vec::new(),
        });
        pushes
    })
}

fn encode_push_stream(sub_id: u64, pushes: &[systrace::serve::Response]) -> Vec<u8> {
    let mut stream = Vec::new();
    for p in pushes {
        stream.extend_from_slice(&wire::encode_response(sub_id, p));
    }
    stream
}

proptest! {
    /// Subscriber-frame fuzz, valid half: any chunking of an EVENT
    /// push stream — the ack, word batches, the zero-word end marker —
    /// reassembles through the client's incremental decoder to exactly
    /// the frames the blocking reader sees, and every body decodes
    /// back to the push that encoded it (same subscription id, same
    /// seq, same words).
    #[test]
    fn any_chunking_of_an_event_push_stream_reassembles_identically(
        pushes in arb_event_stream(),
        sub_id in any::<u64>(),
        sizes in vec(1usize..64, 1..16),
    ) {
        let stream = encode_push_stream(sub_id, &pushes);
        let (oneshot, end) = one_shot_frames(&stream);
        prop_assert_eq!(end, StreamEnd::Clean);
        let (chunked, cend) = reassembled_frames(&stream, &sizes);
        prop_assert_eq!(cend, StreamEnd::Clean);
        prop_assert_eq!(&chunked, &oneshot);
        prop_assert_eq!(chunked.len(), pushes.len());
        for (body, sent) in chunked.iter().zip(&pushes) {
            let (rid, back) = wire::decode_response(body).expect("valid pushes decode");
            prop_assert_eq!(rid, sub_id);
            prop_assert_eq!(&back, sent);
        }
    }

    /// Subscriber-frame fuzz, mutated half: bit-flipped and truncated
    /// EVENT push streams through any chunking never panic the client
    /// decoder, and the incremental path agrees with the blocking
    /// reader on both the surviving frames and how the stream ended —
    /// a severed or corrupted push surfaces as the same typed
    /// condition either way.
    #[test]
    fn mutated_event_push_streams_agree_with_the_blocking_reader(
        pushes in arb_event_stream(),
        sub_id in any::<u64>(),
        sizes in vec(1usize..32, 1..16),
        flips in vec((any::<usize>(), any::<u8>()), 0..4),
        cut in prop_oneof![Just(None), any::<usize>().prop_map(Some)],
    ) {
        let mut stream = encode_push_stream(sub_id, &pushes);
        mutate(&mut stream, &flips, cut);
        let (oneshot, oend) = one_shot_frames(&stream);
        let (chunked, cend) = reassembled_frames(&stream, &sizes);
        prop_assert_eq!(cend, oend);
        prop_assert_eq!(&chunked, &oneshot);
        // Decode is total over whatever bodies survived framing: a
        // typed result, never a panic — the event payload's own
        // word-count-vs-length check and the frame CRC above it decide
        // wrong from right content.
        for body in &chunked {
            let _ = wire::decode_response(body);
            let _ = wire::decode_request(body);
        }
    }
}

/// Characters a sink-spec or duty-cycle string plausibly contains —
/// digits with suffixes, separators, and a little junk, so the fuzz
/// walks both the accept and reject paths of the grammars.
fn arb_speclike_string(max: usize) -> impl Strategy<Value = String> {
    let c = prop_oneof![
        Just('0'),
        Just('1'),
        Just('4'),
        Just('7'),
        Just('9'),
        Just('k'),
        Just('K'),
        Just('m'),
        Just('M'),
        Just(':'),
        Just(','),
        Just('.'),
        Just('-'),
        Just('x'),
        Just('e'),
        Just(' '),
        Just('\u{7f}'),
    ];
    vec(c, 0..max).prop_map(|cs| cs.into_iter().collect())
}

/// A spec item that is *almost* one of the real sink names, or junk.
fn arb_spec_item() -> impl Strategy<Value = String> {
    (
        prop_oneof![
            Just("cache"),
            Just("tlb"),
            Just("dilation"),
            Just("pagemap"),
            Just("defense"),
            Just("sampled"),
            Just("wset"),
            Just("phase"),
            Just("cachex"),
            Just(""),
        ],
        arb_speclike_string(12),
    )
        .prop_map(|(name, tail)| format!("{name}{tail}"))
}

proptest! {
    /// The sampled-window duty-cycle parser is total: any input gets a
    /// typed `SampledCfgError` or a config whose invariants hold (a
    /// live `on` phase, no period overflow, a phase inside the
    /// period) — never a panic. Parsing is deterministic.
    #[test]
    fn sampled_window_config_parsing_never_panics(s in arb_speclike_string(32)) {
        use systrace::tracer::SampledCfg;
        let a = SampledCfg::parse(&s);
        prop_assert_eq!(&a, &SampledCfg::parse(&s));
        if let Ok(cfg) = a {
            prop_assert!(cfg.on >= 1);
            prop_assert!(cfg.period() >= cfg.on);
            if cfg.period() > 0 {
                prop_assert!(cfg.phase() < cfg.period());
            }
        }
    }

    /// The sink-spec grammar behind `tracedump analyze` is total too:
    /// any comma-joined item list builds a stack or surfaces a typed
    /// `SinkSpecError`, never a panic.
    #[test]
    fn sink_spec_parsing_never_panics(items in vec(arb_spec_item(), 0..5)) {
        use systrace::memsim::{PageMap, Policy};
        use systrace::tracer::build_stack;
        let spec = items.join(",");
        let pagemap = PageMap::new(Policy::Identity);
        match build_stack(&spec, &pagemap) {
            Ok(stack) => prop_assert!(!stack.is_empty()),
            Err(e) => {
                // The error renders (Display is part of the type's
                // contract for CLI surfacing).
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

/// The alloc-bound hardening in one directed case each: an absurd
/// word count must fail fast without attempting the allocation.
#[test]
fn absurd_word_counts_error_without_allocating() {
    assert!(decompress_block(&[0u8; 16], usize::MAX).is_err());
    // A v2 trailer claiming 2^32-ish words for a tiny block area dies
    // on the words-vs-bytes bound during index validation.
    let golden = golden_encodings().remove(1);
    let store = TraceStore::decode_any(&golden).unwrap();
    assert!(store.n_words < u64::from(u32::MAX));
}
