//! No-panic fuzzing of every decode entry point: seeded-random bytes
//! and mutated-golden bytes go into [`TraceArchive::decode`],
//! [`TraceStore::decode_any`] and the block codec, and the only
//! acceptable reactions are a typed error or a successful decode —
//! never a panic, a hang, or an unbounded allocation. Complements the
//! chaos campaign (`tests/chaos_campaign.rs`): the campaign classifies
//! *outcomes*, this suite hammers *totality* with far more inputs.

use proptest::collection::vec;
use proptest::prelude::*;
use systrace::store::{compress_block, decompress_block, TraceStore};
use systrace::trace::TraceArchive;

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

/// Golden bytes in both container versions: the committed v1 archive
/// and its v2 store re-encoding, so mutations attack both decoders.
fn golden_encodings() -> Vec<Vec<u8>> {
    let v1 = std::fs::read(GOLDEN_PATH).expect("golden archive must load");
    let archive = TraceArchive::decode(&v1).expect("golden archive decodes");
    let v2 = TraceStore::from_archive(&archive, 256).encode();
    vec![v1, v2]
}

/// Applies one seeded mutation: flip some bytes, then maybe truncate.
fn mutate(bytes: &mut Vec<u8>, flips: &[(usize, u8)], cut: Option<usize>) {
    for &(at, xor) in flips {
        if !bytes.is_empty() {
            let i = at % bytes.len();
            bytes[i] ^= xor.max(1);
        }
    }
    if let Some(cut) = cut {
        if !bytes.is_empty() {
            let keep = cut % bytes.len();
            bytes.truncate(keep);
        }
    }
}

/// Every decoder eats the bytes; success and typed errors are both
/// fine, panics are the only failure.
fn decode_everything(bytes: &[u8]) {
    let _ = TraceArchive::decode(bytes);
    let _ = TraceStore::decode_any(bytes);
    for n_words in [1usize, 7, 4096] {
        let _ = decompress_block(bytes, n_words);
    }
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic_any_decoder(bytes in vec(any::<u8>(), 0..512)) {
        decode_everything(&bytes);
    }

    #[test]
    fn mutated_golden_bytes_never_panic_any_decoder(
        flips in vec((any::<usize>(), any::<u8>()), 1..6),
        cut in prop_oneof![
            Just(None),
            any::<usize>().prop_map(Some),
        ],
    ) {
        for golden in golden_encodings() {
            let mut bytes = golden;
            mutate(&mut bytes, &flips, cut);
            decode_everything(&bytes);
        }
    }

    #[test]
    fn codec_round_trips_at_every_block_size(words in vec(any::<u32>(), 0..5000)) {
        // The codec itself must round-trip any word content at the
        // exercised block sizes, including the degenerate 1 and the
        // prime 7 (worst cases for context reuse).
        for block in [1usize, 7, 4096] {
            for chunk in words.chunks(block) {
                let comp = compress_block(chunk);
                let back = decompress_block(&comp, chunk.len()).expect("own encoding decodes");
                prop_assert_eq!(&back, &chunk.to_vec(), "block={}", block);
            }
        }
    }

    #[test]
    fn corrupted_compressed_blocks_error_or_decode_never_panic(
        words in vec(any::<u32>(), 1..2000),
        at in any::<usize>(),
        xor in 1u8..=255,
        n_words_lie in 0usize..5000,
    ) {
        let mut comp = compress_block(&words);
        let i = at % comp.len();
        comp[i] ^= xor;
        // With the true count and with a lying count: typed error or
        // clean decode, never a panic (the CRC layer above the codec
        // is what distinguishes wrong from right content).
        let _ = decompress_block(&comp, words.len());
        let _ = decompress_block(&comp, n_words_lie);
    }
}

/// The alloc-bound hardening in one directed case each: an absurd
/// word count must fail fast without attempting the allocation.
#[test]
fn absurd_word_counts_error_without_allocating() {
    assert!(decompress_block(&[0u8; 16], usize::MAX).is_err());
    // A v2 trailer claiming 2^32-ish words for a tiny block area dies
    // on the words-vs-bytes bound during index validation.
    let golden = golden_encodings().remove(1);
    let store = TraceStore::decode_any(&golden).unwrap();
    assert!(store.n_words < u64::from(u32::MAX));
}
