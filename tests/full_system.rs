//! Cross-crate integration tests: the complete paper pipeline at the
//! facade level. (Heavier sweeps live in `wrl-bench`; these keep the
//! default test run tractable while still exercising the whole stack.)

use systrace::kernel::{build_system, KernelConfig, Variant};
use systrace::memsim::Policy;

/// The full measured-vs-predicted methodology for one workload on one
/// OS, asserting the paper's quality bars.
fn check_validation(cfg: KernelConfig, workload: &str, max_err_pct: f64) {
    let w = systrace::workloads::by_name(workload).unwrap();
    let row = systrace::validate(&cfg, &w);
    assert_eq!(row.predicted.parse_errors, 0, "{workload}: trace corrupt");
    assert_eq!(row.predicted.sanity_violations, 0);
    let err = row.time_error_pct();
    assert!(
        err <= max_err_pct,
        "{workload}: time error {err:.1}% > {max_err_pct}%"
    );
    // TLB prediction within 25% or 30 misses, whichever is larger
    // (random replacement + invisible explicit fills, §5.2).
    let m = row.measured.utlb_misses as f64;
    let p = row.predicted.utlb_misses as f64;
    assert!(
        (m - p).abs() <= (0.25 * m).max(30.0),
        "{workload}: TLB measured {m} predicted {p}"
    );
}

#[test]
fn ultrix_validation_sed() {
    check_validation(KernelConfig::ultrix(), "sed", 8.0);
}

#[test]
fn ultrix_validation_yacc() {
    check_validation(KernelConfig::ultrix(), "yacc", 8.0);
}

#[test]
fn mach_validation_sed() {
    check_validation(KernelConfig::mach(), "sed", 8.0);
}

#[test]
fn traced_and_untraced_runs_agree_on_output() {
    // The whole point of §4.1: instrumentation must not change what
    // the system computes, only how long it takes.
    let w = systrace::workloads::by_name("yacc").unwrap();
    let mut u = build_system(&KernelConfig::ultrix(), &[&w]);
    let ur = u.run(6_000_000_000);
    let mut t = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let tr = t.run(6_000_000_000);
    assert_eq!(ur.exit_code, tr.exit_code);
    assert_eq!(ur.console, tr.console, "console output differs");
}

#[test]
fn mach_and_ultrix_agree_on_results() {
    let w = systrace::workloads::by_name("egrep").unwrap();
    let mu = systrace::run_measured(&KernelConfig::ultrix(), &w);
    let mm = systrace::run_measured(&KernelConfig::mach(), &w);
    assert_eq!(mu.exit_code, mm.exit_code);
    // Mach does more work for the same job: IPC, server, more kernel.
    assert!(mm.cycles > mu.cycles);
}

#[test]
fn trace_streams_are_complete() {
    // "The traces must be complete. They must represent the kernel
    // and multiple users as they execute on a real machine." (§3.1)
    let w = systrace::workloads::by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::mach().traced(), &[&w]);
    let run = sys.run(6_000_000_000);
    let mut parser = sys.parser();
    let mut sink = systrace::trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(parser.stats.errors, 0);
    assert!(parser.stats.kernel_irefs > 0);
    assert!(parser.stats.user_irefs > 0);
    assert!(parser.stats.kernel_entries > 10);
    // The parsed instruction total closely tracks what the machine
    // retired for *original* instructions: the trace is not missing
    // whole swaths of activity. (The traced machine executes the
    // instrumented expansion; the trace reconstructs the original.)
    let orig_insts = parser.stats.user_irefs + parser.stats.kernel_irefs;
    assert!(orig_insts as f64 > 0.04 * sys.machine.counters.insts() as f64);
}

#[test]
fn page_policy_changes_run_time() {
    // §4.2: the virtual-to-physical map affects cache behaviour.
    let w = systrace::workloads::by_name("tomcatv").unwrap();
    let mut times = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = KernelConfig::mach();
        cfg.page_policy = Policy::Random {
            seed,
            base_pfn: 0x2000,
            frames: 8192,
        };
        times.push(systrace::run_measured(&cfg, &w).cycles);
    }
    let min = *times.iter().min().unwrap();
    let max = *times.iter().max().unwrap();
    assert!(max > min, "random page maps produced identical timings");
}

#[test]
fn variant_enum_is_exposed() {
    assert_ne!(Variant::Ultrix, Variant::Mach);
}

#[test]
fn trace_archives_round_trip_through_disk() {
    // Record a real system trace, archive it, reload it, and get
    // identical analysis results — the §3.4 "traces on tape" path.
    let w = systrace::workloads::by_name("yacc").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(6_000_000_000);
    let archive = sys.archive(&run);

    let dir = std::env::temp_dir().join("w3k_archive_test.w3kt");
    archive.save(&dir).unwrap();
    let loaded = systrace::trace::TraceArchive::load(&dir).unwrap();
    std::fs::remove_file(&dir).ok();

    let mut p1 = sys.parser();
    let mut s1 = systrace::trace::CollectSink::default();
    p1.parse_all(&run.trace_words, &mut s1);
    let mut p2 = loaded.parser();
    let mut s2 = systrace::trace::CollectSink::default();
    p2.parse_all(&loaded.words, &mut s2);
    assert_eq!(p2.stats, p1.stats);
    assert_eq!(s2.irefs, s1.irefs);
    assert_eq!(s2.drefs, s1.drefs);
}

/// Online analysis (§3.3): feeding each buffer drain through
/// `push_words` as it happens must produce exactly the statistics the
/// offline one-shot parse of the archived words produces — even with
/// a buffer small enough that blocks straddle drains.
#[test]
fn online_analysis_matches_offline() {
    let w = systrace::workloads::by_name("sed").unwrap();
    let cfg = KernelConfig {
        ktrace_bytes: 1 << 18, // 256 KB: force many doorbells
        ..KernelConfig::ultrix().traced()
    };

    let mut sys = build_system(&cfg, &[&w]);
    let mut online = systrace::trace::CollectSink::default();
    let mut parser = sys.parser();
    let run = sys.run_with(2_000_000_000, |chunk| {
        parser.push_words(chunk, &mut online);
    });
    parser.finish(&mut online);
    assert!(run.drains > 3, "want several drains, got {}", run.drains);
    assert_eq!(parser.stats.errors, 0);

    let mut offline = systrace::trace::CollectSink::default();
    let mut p2 = sys.parser();
    p2.parse_all(&run.trace_words, &mut offline);
    assert_eq!(p2.stats.errors, 0);
    assert_eq!(online.irefs, offline.irefs);
    assert_eq!(online.drefs, offline.drefs);
    assert_eq!(online.switches, offline.switches);
}
