//! The chaos campaign: seeded fault-injection plans run against the
//! committed golden trace, asserting the §4.3 trichotomy — every
//! injected fault is *detected* (typed error or defensive tally),
//! *harmless* (bit-identical results), or *absorbed* (the corruption
//! forged a well-formed trace, processed deterministically). The
//! forbidden fourth outcome — a panic or a silently wrong answer —
//! must never occur, at any site, for any seed.
//!
//! Every plan replays from its one-line `site:seed:intensity` spec;
//! a failure here prints the specs to rerun.

use std::time::Duration;
use systrace::fault::{campaign, run_campaign, run_plan, ChaosInput, FaultPlan, Layer, Outcome};
use systrace::trace::{
    ChaosHooks, ChunkFate, CollectSink, Pipeline, PipelineCfg, StageSite, TraceArchive,
};

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";
/// The campaign's fixed base seed; `(BASE_SEED, N_PLANS)` is the
/// entire campaign spec and replays identically anywhere.
const BASE_SEED: u64 = 0x5752_4c94_0600_c4a0;
const N_PLANS: usize = 440;

fn golden_input() -> ChaosInput {
    ChaosInput::new(TraceArchive::load(GOLDEN_PATH).expect("golden archive must load"))
}

#[test]
fn campaign_of_440_seeded_plans_never_reaches_a_forbidden_outcome() {
    let input = golden_input();
    let plans = campaign(BASE_SEED, N_PLANS);
    assert!(plans.len() >= 200, "campaign must be at least 200 plans");
    let report = run_campaign(&input, &plans);
    println!("{}", report.render());

    let forbidden = report.forbidden();
    assert!(
        forbidden.is_empty(),
        "forbidden outcomes (rerun each spec below):\n{}",
        forbidden
            .iter()
            .map(|(p, why)| format!("  {p} -> {why}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // At least one corruption per layer was demonstrably *detected* —
    // the campaign exercises the defenses, not just the happy paths.
    let layers = report.detected_layers();
    for layer in [
        Layer::Parser,
        Layer::Store,
        Layer::Farm,
        Layer::Wire,
        Layer::Fabric,
        Layer::Tracer,
    ] {
        assert!(
            layers.contains(&layer),
            "{layer:?} detected nothing across {N_PLANS} plans"
        );
    }

    let (detected, harmless, absorbed, f) = report.totals();
    assert_eq!(f, 0);
    assert_eq!(
        detected + harmless + absorbed,
        N_PLANS as u64,
        "every plan classifies into the trichotomy"
    );
    assert!(detected > 0 && harmless > 0);
}

#[test]
fn any_plan_replays_identically_from_its_spec_line() {
    let input = golden_input();
    // One plan per site, via the round-robin campaign head.
    for plan in campaign(BASE_SEED ^ 0x0f0f, 22) {
        let spec = plan.to_string();
        let replayed: FaultPlan = spec.parse().expect("specs round-trip");
        assert_eq!(replayed, plan);
        let a = run_plan(&input, plan);
        let b = run_plan(&input, replayed);
        assert_eq!(a, b, "{spec}: outcome must be reproducible");
        assert!(
            !matches!(a, Outcome::Forbidden { .. }),
            "{spec}: forbidden outcome {a:?}"
        );
    }
}

/// The satellite differential: with stalls injected into every
/// channel (and, at four workers, decode-completion reordering),
/// streaming results stay bit-identical to the batch parse at every
/// worker count. Perturbing *when* work happens must never perturb
/// *what* is computed.
#[test]
fn streaming_matches_batch_under_stalls_and_reorders_at_1_2_4_workers() {
    let input = golden_input();
    let stall = ChaosHooks::on_chunk(|_, seq| {
        if seq % 2 == 0 {
            ChunkFate::Stall(Duration::from_micros(150))
        } else {
            ChunkFate::Deliver
        }
    });
    let reorder = ChaosHooks::on_chunk(|site, seq| {
        // Delay one of the two decode workers' chunks so completions
        // arrive out of order at the parse stage.
        if site == StageSite::Decode && seq % 2 == 0 {
            ChunkFate::Stall(Duration::from_micros(300))
        } else {
            ChunkFate::Deliver
        }
    });
    for (name, hooks, worker_set) in [
        ("stalls", &stall, &[1usize, 2, 4][..]),
        ("reorders", &reorder, &[4][..]),
    ] {
        for &workers in worker_set {
            let cfg = PipelineCfg {
                chunk_words: 256,
                workers,
                ..PipelineCfg::default()
            };
            let mut pipe = Pipeline::with_hooks(
                input.archive.parser(),
                CollectSink::default(),
                cfg,
                hooks.clone(),
            );
            pipe.feed(&input.archive.words);
            let (report, sink) = pipe.finish();
            let tag = format!("{name} workers={workers}");
            assert_eq!(report.lost_chunks, 0, "{tag}: no chunk may be lost");
            assert_eq!(report.parse, input.baseline_stats, "{tag}: stats diverged");
            assert_eq!(sink.irefs, input.baseline.irefs, "{tag}: irefs diverged");
            assert_eq!(sink.drefs, input.baseline.drefs, "{tag}: drefs diverged");
            assert_eq!(
                sink.switches, input.baseline.switches,
                "{tag}: switches diverged"
            );
        }
    }
}

/// End to end through the harness: a traced system run streamed
/// through a stall-injected pipeline predicts exactly what the batch
/// harness predicts.
#[test]
fn hooked_harness_run_with_stalls_predicts_identically() {
    let w = systrace::workloads::by_name("sed").unwrap();
    let cfg = systrace::kernel::KernelConfig::ultrix().traced();
    let arith = systrace::pixie_arith_stalls(&w);
    let batch = systrace::run_predicted(&cfg, &w, arith);
    let hooks = ChaosHooks::on_chunk(|_, seq| {
        if seq % 5 == 0 {
            ChunkFate::Stall(Duration::from_micros(100))
        } else {
            ChunkFate::Deliver
        }
    });
    let streamed = systrace::run_predicted_streaming_hooked(
        &cfg,
        &w,
        arith,
        PipelineCfg {
            workers: 2,
            ..PipelineCfg::default()
        },
        hooks,
    );
    assert_eq!(streamed.prediction, batch.prediction);
    assert_eq!(streamed.trace_insts, batch.trace_insts);
    assert_eq!(streamed.trace_words, batch.trace_words);
    assert_eq!(streamed.parse_errors, batch.parse_errors);
    assert_eq!(streamed.exit_code, batch.exit_code);
}
