//! Pinned metrics regression test.
//!
//! Re-analyses the committed golden trace (`tests/data/golden.w3kt`)
//! with the observability layer attached and asserts that every
//! deterministic metric in the registry equals the same pinned
//! statistics `tests/golden_trace.rs` pins for the parser — so the
//! metrics layer cannot silently drift from the quantities it claims
//! to export. Also cross-checks the committed
//! `results/metrics-sed-ultrix.json` artifact against the live
//! registry: same schema tag, same metric set, same metadata.
//!
//! Everything lives in ONE `#[test]`: the registry is process-global
//! and tests within a binary run on parallel threads, so splitting
//! these assertions across tests would race on `reset()`.

use systrace::memsim::{MemSim, PageMap, Policy, SimCfg, UtlbSynth};
use systrace::obs;
use systrace::trace::{EventVec, ParserObs, Pipeline, PipelineCfg, TraceArchive};

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";
const ARTIFACT_PATH: &str = "results/metrics-sed-ultrix.json";

// The same pinned golden-trace statistics as tests/golden_trace.rs.
const PINNED_WORDS: i64 = 8192;
const PINNED_BB_RECORDS: i64 = 7524;
const PINNED_MEM_RECORDS: i64 = 646;
const PINNED_KERNEL_ENTRIES: i64 = 8;
const PINNED_CTX_SWITCHES: i64 = 6;

/// Fixed, host-independent pipeline shape for the streaming pass.
const PCFG: PipelineCfg = PipelineCfg {
    chunk_words: 4096,
    depth: 2,
    workers: 2,
    batch_events: 512,
};

fn simcfg() -> SimCfg {
    SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    }
}

fn fresh_sim() -> MemSim {
    MemSim::new(
        simcfg(),
        PageMap::new(Policy::FirstFree { base_pfn: 0x2000 }),
    )
}

fn counter(snap: &obs::Snapshot, name: &str) -> u64 {
    match find(snap, name).value {
        obs::ValueSnap::Counter(v) => v,
        ref other => panic!("{name}: expected counter, got {other:?}"),
    }
}

fn gauge(snap: &obs::Snapshot, name: &str) -> i64 {
    match find(snap, name).value {
        obs::ValueSnap::Gauge { value, .. } => value,
        ref other => panic!("{name}: expected gauge, got {other:?}"),
    }
}

fn find<'a>(snap: &'a obs::Snapshot, name: &str) -> &'a obs::MetricSnap {
    snap.metrics
        .iter()
        .find(|m| m.desc.name == name)
        .unwrap_or_else(|| panic!("{name} not registered"))
}

#[test]
fn golden_trace_metrics_match_pinned_stats_and_committed_artifact() {
    obs::register_all();
    obs::global().reset();
    let archive = TraceArchive::load(GOLDEN_PATH).expect("golden archive must load");

    // -- Batch path: parse into a buffer, replay into the simulator
    //    (the metered harness's phase split).
    let mut parser = archive.parser();
    parser.attach_obs(ParserObs::register());
    let mut events = EventVec::default();
    parser.parse_all(&archive.words, &mut events);
    let n_events = events.0.len();
    let mut sim = fresh_sim();
    for ev in events.0 {
        ev.apply(&mut sim);
    }
    parser.stats.export_obs();
    sim.stats.export_obs();

    // -- Streaming path over the same words, fixed shape.
    let mut pipe = Pipeline::new(archive.parser(), fresh_sim(), PCFG);
    pipe.feed(&archive.words);
    let (report, stream_sim) = pipe.finish();
    assert_eq!(report.parse, parser.stats, "pipeline must match batch");
    assert_eq!(stream_sim.stats, sim.stats, "streamed sim must match");

    let snap = obs::global().snapshot();

    if obs::compiled_with_recording() {
        // Parse gauges equal the pinned golden statistics.
        assert_eq!(gauge(&snap, "trace.parse.words"), PINNED_WORDS);
        assert_eq!(gauge(&snap, "trace.parse.bb_records"), PINNED_BB_RECORDS);
        assert_eq!(gauge(&snap, "trace.parse.mem_records"), PINNED_MEM_RECORDS);
        assert_eq!(
            gauge(&snap, "trace.parse.kernel_entries"),
            PINNED_KERNEL_ENTRIES
        );
        assert_eq!(
            gauge(&snap, "trace.parse.ctx_switches"),
            PINNED_CTX_SWITCHES
        );
        assert_eq!(gauge(&snap, "trace.parse.errors"), 0);
        for err in [
            "trace.parse.error.unknown_bb",
            "trace.parse.error.wrong_space",
            "trace.parse.error.bad_control",
            "trace.parse.error.truncated",
            "trace.parse.error.unbalanced_kexit",
            "trace.parse.error.no_table_for_asid",
        ] {
            assert_eq!(counter(&snap, err), 0, "{err} on a healthy trace");
        }

        // Simulator gauges equal the simulator's statistics — the
        // export is wired to the right fields. (The kernel iref count
        // legitimately exceeds the parser's: the simulator adds the
        // synthesized TLB-refill handler references of §5.2.)
        assert_eq!(gauge(&snap, "sim.irefs.user") as u64, sim.stats.user_irefs);
        assert_eq!(
            gauge(&snap, "sim.irefs.kernel") as u64,
            sim.stats.kernel_irefs
        );
        assert_eq!(
            sim.stats.kernel_irefs,
            parser.stats.kernel_irefs + sim.stats.synth_irefs,
            "kernel irefs = parsed refs + synthesized refill refs"
        );
        assert_eq!(gauge(&snap, "sim.sanity_violations"), 0);

        // Stream stage counters are exact and shape-determined.
        let words = PINNED_WORDS as u64;
        let chunks = words.div_ceil(PCFG.chunk_words as u64);
        assert_eq!(counter(&snap, "stream.words"), words);
        assert_eq!(counter(&snap, "stream.chunks"), chunks);
        assert_eq!(counter(&snap, "stream.parse.words"), words);
        assert_eq!(counter(&snap, "stream.sink.events"), n_events as u64);
        assert_eq!(
            counter(&snap, "stream.sink.batches"),
            n_events.div_ceil(PCFG.batch_events) as u64
        );
        match &find(&snap, "stream.chunk.words").value {
            obs::ValueSnap::Histogram(h) => {
                assert_eq!(h.count, chunks);
                assert_eq!(h.sum, words);
            }
            other => panic!("histogram expected, got {other:?}"),
        }
    }

    // -- Committed artifact: schema tag, metric set and metadata must
    //    match the live registry exactly (values differ — the artifact
    //    is a full sed run — but names/kinds/units/sites/papers are
    //    the docs-as-contract surface).
    let text = std::fs::read_to_string(ARTIFACT_PATH).expect("committed metrics artifact");
    let json = obs::parse_json(&text).expect("artifact must be valid JSON");
    let obj = json.as_object().expect("top-level object");
    assert_eq!(obj["schema"].as_str(), Some(obs::SCHEMA), "schema tag");
    let file_metrics = obj["metrics"].as_array().expect("metrics array");
    assert_eq!(
        file_metrics.len(),
        snap.metrics.len(),
        "artifact and registry must list the same metrics (regenerate with obsreport)"
    );
    for fm in file_metrics {
        let fm = fm.as_object().expect("metric object");
        let name = fm["name"].as_str().expect("name");
        let live = find(&snap, name);
        assert_eq!(fm["kind"].as_str(), Some(live.kind.as_str()), "{name} kind");
        assert_eq!(fm["unit"].as_str(), Some(live.desc.unit), "{name} unit");
        assert_eq!(fm["site"].as_str(), Some(live.desc.site), "{name} site");
        assert_eq!(fm["paper"].as_str(), Some(live.desc.paper), "{name} paper");
    }
    // Spot-check run invariants recorded in the artifact.
    let file_value = |name: &str, field: &str| -> i64 {
        file_metrics
            .iter()
            .find(|m| m.as_object().unwrap()["name"].as_str() == Some(name))
            .and_then(|m| m.as_object().unwrap().get(field))
            .and_then(|v| v.as_i64())
            .unwrap_or_else(|| panic!("{name}.{field} missing in artifact"))
    };
    assert_eq!(file_value("trace.parse.errors", "value"), 0);
    assert_eq!(file_value("sim.sanity_violations", "value"), 0);
    assert_eq!(
        file_value("stream.words", "value"),
        file_value("trace.parse.words", "value"),
        "every fed word was parsed"
    );
    assert!(file_value("machine.cycles", "value") > 0);
}
