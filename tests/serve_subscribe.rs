//! Deterministic live-tail subscription tests, in two tiers.
//!
//! * **FSM tier** — the `Subscribed` connection state driven
//!   byte-by-byte through a scripted [`Transport`]: no sockets, no
//!   threads, no timing. A subscribe frame fragmented one byte per
//!   readability event, an `EVENT` push landing while an unsubscribe
//!   is mid-read, slow-consumer refusal at *exactly* the queue bound,
//!   and a connection returning to ordinary request service after
//!   unsubscribing.
//! * **Loopback tier** — the correctness bar from the wire spec: the
//!   concatenation of every `EVENT` a subscriber receives must be
//!   bit-identical to [`filter_stream`] over the same words and
//!   predicate, regardless of *when* it subscribed. 1, 4 and 16
//!   subscribers, the full predicate panel, joins at start-of-stream
//!   and mid-run, both `from_start` semantics — plus a deliberately
//!   stalled reader evicted at the documented `sub_queue` bound with
//!   the typed `SLOW_CONSUMER` error, and the `sub_retention` word
//!   bound evicting exactly at the bound with the typed
//!   `RETENTION_EVICTED` refusal for stale `from_start` joins.
//!
//! The `serve.*` metric family is process-global, so the test that
//! asserts on it serializes behind one mutex.

use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Barrier, Mutex, OnceLock};

use systrace::serve::wire::{self, Request, Response};
use systrace::serve::{
    Catalog, Client, ClientCfg, Conn, ConnState, IoTally, ServeCfg, ServeError, Server, TailItem,
    Transport, WriteShape,
};
use systrace::store::{filter_stream, Predicate, TraceStore};
use systrace::trace::TraceArchive;

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

/// Serializes tests that assert on the shared `serve.*` metrics.
fn metrics_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn golden() -> TraceArchive {
    TraceArchive::load(GOLDEN_PATH).expect("golden archive loads")
}

/// The same panel the query differential uses: unfiltered, windowed,
/// per-ASID, both combined, and two empty-by-construction predicates.
fn predicate_panel(n_words: u64) -> Vec<Predicate> {
    let mid = n_words / 2;
    let mut panel = vec![
        Predicate::default(),
        Predicate {
            window: Some((0, n_words.min(100))),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid + 500)),
            ..Predicate::default()
        },
        Predicate {
            window: Some((mid, mid)),
            ..Predicate::default()
        },
        Predicate {
            asid: Some(0xee),
            ..Predicate::default()
        },
    ];
    for asid in 0..4u8 {
        panel.push(Predicate {
            asid: Some(asid),
            ..Predicate::default()
        });
        panel.push(Predicate {
            asid: Some(asid),
            window: Some((mid / 2, mid + mid / 2)),
        });
    }
    panel
}

// ---------------------------------------------------------------- FSM

/// One scripted read result.
enum ReadStep {
    Give(Vec<u8>),
    Block,
}

/// One scripted write-acceptance result.
enum WriteStep {
    Block,
}

/// A transport whose reads and writes are scripted in advance. Reads
/// past the script end block; writes past the script end accept
/// everything. Everything written is captured for byte-exact asserts.
#[derive(Default)]
struct Scripted {
    reads: VecDeque<ReadStep>,
    writes: VecDeque<WriteStep>,
    written: Vec<u8>,
    severed: bool,
}

impl Scripted {
    fn new() -> Scripted {
        Scripted::default()
    }

    /// Queues `bytes` split into `step`-sized fragments with a
    /// `WouldBlock` after each, so every fragment is its own
    /// readability event.
    fn read_fragmented(mut self, bytes: &[u8], step: usize) -> Scripted {
        for chunk in bytes.chunks(step) {
            self.reads.push_back(ReadStep::Give(chunk.to_vec()));
            self.reads.push_back(ReadStep::Block);
        }
        self
    }

    fn read_chunk(mut self, bytes: &[u8]) -> Scripted {
        self.reads.push_back(ReadStep::Give(bytes.to_vec()));
        self
    }

    fn read_block(mut self) -> Scripted {
        self.reads.push_back(ReadStep::Block);
        self
    }

    fn write_blocks(mut self, n: usize) -> Scripted {
        for _ in 0..n {
            self.writes.push_back(WriteStep::Block);
        }
        self
    }
}

impl Transport for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.reads.pop_front() {
            None | Some(ReadStep::Block) => Err(io::ErrorKind::WouldBlock.into()),
            Some(ReadStep::Give(bytes)) => {
                assert!(bytes.len() <= buf.len(), "script fragment exceeds read buf");
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.writes.pop_front() {
            None => {
                self.written.extend_from_slice(buf);
                Ok(buf.len())
            }
            Some(WriteStep::Block) => Err(io::ErrorKind::WouldBlock.into()),
        }
    }

    fn sever(&mut self) {
        self.severed = true;
    }
}

fn subscribe_frame(req_id: u64, from_start: bool) -> Vec<u8> {
    wire::encode_request(
        req_id,
        &Request::Subscribe {
            archive: "golden".into(),
            pred: Predicate::default(),
            from_start,
        },
    )
}

fn event_frame(req_id: u64, seq: u64, words: Vec<u32>) -> Vec<u8> {
    wire::encode_response(req_id, &Response::Event { seq, words })
}

/// Drives readability events until the script is exhausted or a frame
/// buffers.
fn read_until_settled(conn: &mut Conn<Scripted>, tally: &mut IoTally) {
    for _ in 0..512 {
        if !conn.wants_read() || conn.has_frame() {
            break;
        }
        conn.on_readable(tally);
    }
}

/// Flushes the out queue through however many blocked and accepting
/// writability events the script dictates.
fn flush_until_settled(conn: &mut Conn<Scripted>, tally: &mut IoTally) {
    for _ in 0..512 {
        if !conn.wants_write() {
            break;
        }
        conn.on_writable(tally);
    }
}

#[test]
fn a_subscribe_frame_fragmented_one_byte_at_a_time_reaches_subscribed() {
    let frame = subscribe_frame(9, true);
    let t = Scripted::new().read_fragmented(&frame, 1);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();

    read_until_settled(&mut conn, &mut tally);
    assert!(conn.has_frame(), "all fragments in → one buffered frame");
    let body = conn.take_frame().expect("frame buffered");
    let (req_id, req) = wire::decode_request(&body).expect("body decodes");
    assert_eq!(req_id, 9);
    assert!(matches!(
        req,
        Request::Subscribe {
            from_start: true,
            ..
        }
    ));

    // The event thread attaches the subscription and acks, exactly as
    // `subscribe_inline` does.
    conn.mark_subscribed();
    assert_eq!(conn.state(), ConnState::Subscribed);
    let ack = wire::encode_response(9, &Response::Subscribed);
    conn.enqueue(ack.clone(), WriteShape::default(), false);
    assert_eq!(
        conn.state(),
        ConnState::Subscribed,
        "enqueue must not knock a subscriber into Writing"
    );
    flush_until_settled(&mut conn, &mut tally);
    assert_eq!(conn.transport().written, ack);
    assert_eq!(
        conn.state(),
        ConnState::Subscribed,
        "an empty out queue parks in Subscribed, not Reading"
    );
    assert!(
        conn.wants_read(),
        "a subscriber keeps read interest for its unsubscribe"
    );
    assert!(!conn.transport().severed);
}

#[test]
fn an_event_push_lands_while_an_unsubscribe_is_mid_read() {
    let unsub = wire::encode_request(10, &Request::Unsubscribe);
    // Three bytes of the unsubscribe, a block, then the rest — the
    // push arrives in the gap.
    let t = Scripted::new()
        .read_chunk(&unsub[..3])
        .read_block()
        .read_chunk(&unsub[3..]);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.mark_subscribed();

    conn.on_readable(&mut tally);
    assert_eq!(conn.state(), ConnState::Subscribed);
    assert!(!conn.has_frame(), "unsubscribe still mid-frame");

    let ev = event_frame(9, 0, vec![1, 2, 3]);
    assert!(
        conn.try_push(ev.clone(), WriteShape::default(), 4),
        "push admitted under the bound"
    );
    flush_until_settled(&mut conn, &mut tally);
    assert_eq!(conn.transport().written, ev, "push flushed mid-read");
    assert_eq!(conn.state(), ConnState::Subscribed);

    read_until_settled(&mut conn, &mut tally);
    let body = conn.take_frame().expect("unsubscribe assembled");
    assert_eq!(
        conn.state(),
        ConnState::Subscribed,
        "take_frame on a subscriber stays in Subscribed (handled inline)"
    );
    assert!(matches!(
        wire::decode_request(&body).expect("decodes").1,
        Request::Unsubscribe
    ));

    let ack = wire::encode_response(10, &Response::Unsubscribed);
    conn.enqueue(ack.clone(), WriteShape::default(), false);
    conn.mark_unsubscribed();
    assert_eq!(
        conn.state(),
        ConnState::Writing,
        "detach with bytes pending flushes through Writing"
    );
    flush_until_settled(&mut conn, &mut tally);
    assert_eq!(conn.state(), ConnState::Reading);
    let both: Vec<u8> = ev.iter().chain(ack.iter()).copied().collect();
    assert_eq!(conn.transport().written, both, "push precedes the ack");
}

#[test]
fn a_slow_consumer_is_refused_at_exactly_the_queue_bound() {
    // A peer that never drains: every frame stays queued.
    let t = Scripted::new().write_blocks(512);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.mark_subscribed();

    let bound = 4usize;
    for i in 0..bound {
        assert!(
            conn.try_push(
                event_frame(9, i as u64, vec![i as u32]),
                WriteShape::default(),
                bound
            ),
            "push {i} of {bound} must be admitted"
        );
        conn.on_writable(&mut tally); // blocked: nothing drains
    }
    assert_eq!(conn.out_depth(), bound);
    assert!(
        !conn.try_push(event_frame(9, 99, vec![99]), WriteShape::default(), bound),
        "the push that would exceed the bound is refused — not one earlier"
    );
    assert_eq!(
        conn.out_depth(),
        bound,
        "a refused push must not grow the queue"
    );

    // The server then evicts: typed error, drain, close.
    let err = wire::encode_response(
        9,
        &Response::Error {
            code: wire::err::SLOW_CONSUMER,
            msg: "evicted: 4 frames queued at bound 4".into(),
        },
    );
    conn.enqueue(err, WriteShape::default(), false);
    conn.begin_drain();
    assert_eq!(conn.state(), ConnState::Draining);
    assert!(
        !conn.wants_read(),
        "an evicted subscriber reads nothing more"
    );
    flush_until_settled(&mut conn, &mut tally);
    assert_eq!(conn.state(), ConnState::Closed, "drained and closed");
}

#[test]
fn an_unsubscribed_connection_serves_ordinary_requests_again() {
    let unsub = wire::encode_request(11, &Request::Unsubscribe);
    let query = wire::encode_request(12, &Request::Catalog);
    let t = Scripted::new().read_chunk(&unsub).read_chunk(&query);
    let mut conn = Conn::new(t, 100, 100);
    let mut tally = IoTally::default();
    conn.mark_subscribed();

    read_until_settled(&mut conn, &mut tally);
    let body = conn.take_frame().expect("unsubscribe frame");
    assert!(matches!(
        wire::decode_request(&body).expect("decodes").1,
        Request::Unsubscribe
    ));
    let ack = wire::encode_response(11, &Response::Unsubscribed);
    conn.enqueue(ack.clone(), WriteShape::default(), false);
    conn.mark_unsubscribed();
    flush_until_settled(&mut conn, &mut tally);
    assert_eq!(conn.state(), ConnState::Reading, "back to request service");

    // The very same connection now carries a normal request/response
    // cycle — subscription left no residue.
    read_until_settled(&mut conn, &mut tally);
    let body = conn.take_frame().expect("catalog frame");
    assert_eq!(conn.state(), ConnState::Dispatching, "ordinary dispatch");
    assert!(matches!(
        wire::decode_request(&body).expect("decodes").1,
        Request::Catalog
    ));
    let resp = wire::encode_response(12, &Response::Busy);
    conn.enqueue(resp.clone(), WriteShape::default(), false);
    flush_until_settled(&mut conn, &mut tally);
    assert_eq!(conn.state(), ConnState::Reading);
    let all: Vec<u8> = ack.iter().chain(resp.iter()).copied().collect();
    assert_eq!(conn.transport().written, all);
}

// ----------------------------------------------------------- loopback

/// Connects with retries: a herd of subscribers can transiently
/// overflow the listen backlog while the event thread is mid-pass.
fn connect_patiently(addr: std::net::SocketAddr) -> Client {
    for _ in 0..500 {
        if let Ok(c) = Client::connect_cfg(addr, ClientCfg::default()) {
            return c;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    panic!("could not connect to the loopback server");
}

/// Drains a tail to its end-of-feed marker, asserting `seq`
/// continuity, and returns the offset of the first pushed word (if
/// any event arrived) plus the concatenated words.
fn collect_tail(c: &mut Client, tag: &str) -> (Option<u64>, Vec<u32>) {
    let mut first = None;
    let mut words: Vec<u32> = Vec::new();
    loop {
        match c.next_event() {
            Ok(TailItem::Event { seq, words: w }) => {
                let start = *first.get_or_insert(seq);
                assert_eq!(
                    seq,
                    start + words.len() as u64,
                    "{tag}: EVENT seq must advance by exactly the words delivered"
                );
                words.extend(w);
            }
            Ok(TailItem::End) => return (first, words),
            Err(e) => panic!("{tag}: tail failed before its end marker: {e}"),
        }
    }
}

/// The differential: `n_subs` subscribers joining at start-of-stream
/// and `n_subs` joining mid-run, cycling the predicate panel and both
/// `from_start` semantics, every tail compared against
/// [`filter_stream`] over the same words and predicate.
fn run_differential(n_subs: usize) {
    let a = golden();
    let n_words = a.words.len() as u64;
    let panel = predicate_panel(n_words);
    let expected: Vec<Vec<u32>> = panel.iter().map(|p| filter_stream(&a.words, p)).collect();
    let server =
        Server::start("127.0.0.1:0", Catalog::new(), ServeCfg::default()).expect("server starts");
    let feed = server.live_feed("golden");
    let addr = server.addr();

    let half = a.words.len() / 2;
    // Two rendezvous points: all start-joiners subscribed before the
    // first word is published, all mid-joiners subscribed after
    // exactly `half` words.
    let at_start = Barrier::new(n_subs + 1);
    let at_mid = Barrier::new(n_subs + 1);

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for i in 0..n_subs {
            // Start-of-stream joiners: with nothing published yet the
            // two join semantics must be indistinguishable — exercise
            // both opcodes anyway.
            let (panel, expected, at_start) = (&panel, &expected, &at_start);
            handles.push(s.spawn(move || {
                let which = i % panel.len();
                let from_start = i % 2 == 0;
                let tag = format!("start-joiner {i} (pred {which}, from_start={from_start})");
                let mut c = connect_patiently(addr);
                c.subscribe("golden", &panel[which], from_start)
                    .unwrap_or_else(|e| panic!("{tag}: subscribe: {e}"));
                at_start.wait();
                let (first, words) = collect_tail(&mut c, &tag);
                assert_eq!(
                    words, expected[which],
                    "{tag}: tail differs from filter_stream"
                );
                if !words.is_empty() {
                    assert_eq!(first, Some(0), "{tag}: a start joiner's tail begins at 0");
                }
            }));
        }
        for i in 0..n_subs {
            let (panel, expected, at_mid) = (&panel, &expected, &at_mid);
            handles.push(s.spawn(move || {
                let which = i % panel.len();
                let from_start = i % 2 == 1;
                let tag = format!("mid-joiner {i} (pred {which}, from_start={from_start})");
                at_mid.wait();
                let mut c = connect_patiently(addr);
                c.subscribe("golden", &panel[which], from_start)
                    .unwrap_or_else(|e| panic!("{tag}: subscribe: {e}"));
                let (first, words) = collect_tail(&mut c, &tag);
                if from_start {
                    // Late joiners asking for history get the whole
                    // filtered stream, bit-identical.
                    assert_eq!(
                        words, expected[which],
                        "{tag}: from-start tail differs from filter_stream"
                    );
                } else {
                    // From-now joiners get an exact suffix: the first
                    // EVENT's seq locates it in the filtered stream.
                    match first {
                        Some(f) => assert_eq!(
                            words,
                            expected[which][f as usize..],
                            "{tag}: from-now tail is not a suffix of filter_stream"
                        ),
                        None => assert!(words.is_empty(), "{tag}: words arrived without an EVENT"),
                    }
                }
            }));
        }

        // The publisher: first half, rendezvous, second half, finish —
        // in small chunks so pushes interleave with catch-ups.
        at_start.wait();
        for chunk in a.words[..half].chunks(1024) {
            feed.publish(chunk);
        }
        // The mid-joiners subscribe only after this rendezvous, so
        // their history is at least the first half. (The publisher
        // pauses; `half` is a lower bound on what they see as
        // history, and the differential holds at any boundary.)
        at_mid.wait();
        for chunk in a.words[half..].chunks(1024) {
            feed.publish(chunk);
        }
        feed.finish();

        for h in handles {
            h.join().expect("subscriber panicked");
        }
    });
    server.shutdown();
}

#[test]
fn one_subscriber_tails_bit_identically_to_filter_stream() {
    run_differential(1);
}

#[test]
fn four_subscribers_tail_bit_identically_to_filter_stream() {
    run_differential(4);
}

#[test]
fn sixteen_subscribers_tail_bit_identically_to_filter_stream() {
    run_differential(16);
}

#[test]
fn a_finished_feed_serves_history_to_late_joiners_and_ends_immediately() {
    let a = golden();
    let server =
        Server::start("127.0.0.1:0", Catalog::new(), ServeCfg::default()).expect("server starts");
    let feed = server.live_feed("golden");
    feed.publish(&a.words);
    feed.finish();

    let pred = Predicate::default();
    let expected = filter_stream(&a.words, &pred);

    // From-start after the end: the whole history, then the marker.
    let mut c = connect_patiently(server.addr());
    c.subscribe("golden", &pred, true).expect("subscribe");
    let (first, words) = collect_tail(&mut c, "late from-start");
    assert_eq!(first, Some(0));
    assert_eq!(words, expected, "late from-start join replays everything");

    // From-now after the end: nothing but the marker.
    let mut c = connect_patiently(server.addr());
    c.subscribe("golden", &pred, false).expect("subscribe");
    let (first, words) = collect_tail(&mut c, "late from-now");
    assert_eq!(first, None, "nothing published after a from-now join");
    assert!(words.is_empty());

    // Unknown feeds are a typed error, not a hang.
    let mut c = connect_patiently(server.addr());
    match c.subscribe("nope", &pred, true) {
        Err(ServeError::Remote { code, msg }) => {
            assert_eq!(code, wire::err::NO_SUCH_ARCHIVE, "{msg}");
            assert!(msg.contains("nope"), "error names the feed: {msg}");
        }
        other => panic!("subscribing to a missing feed gave {other:?}"),
    }
    server.shutdown();
}

#[test]
fn a_deliberately_stalled_reader_is_evicted_at_the_sub_queue_bound() {
    let _guard = metrics_lock();
    // A tiny queue bound and fat events: the stalled reader's socket
    // buffers fill, frames back up in its out queue, and the push
    // that would make `sub_queue` + 1 evicts it.
    let cfg = ServeCfg {
        sub_queue: 2,
        ..ServeCfg::default()
    };
    let server = Server::start("127.0.0.1:0", Catalog::new(), cfg).expect("server starts");
    let obs = server.obs().clone();
    let evicted_before = obs.sub_evicted.get();
    let feed = server.live_feed("firehose");

    let mut stalled = connect_patiently(server.addr());
    stalled
        .subscribe("firehose", &Predicate::default(), true)
        .expect("subscribe");

    // Publish until the eviction metric moves: each publish is two
    // SUB_CHUNK-sized EVENT frames (~64 KiB) the reader never drains.
    let burst: Vec<u32> = (0..16_384u32).collect();
    let mut rounds = 0usize;
    while obs.sub_evicted.get() == evicted_before {
        feed.publish(&burst);
        rounds += 1;
        assert!(
            rounds <= 4096,
            "no eviction after {rounds} undrained bursts at sub_queue=2"
        );
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    assert_eq!(
        obs.sub_evicted.get(),
        evicted_before + 1,
        "exactly one subscriber evicted"
    );

    // The stalled reader now drains what was queued ahead of the
    // eviction and must then hit the typed SLOW_CONSUMER error.
    let verdict = loop {
        match stalled.next_event() {
            Ok(TailItem::Event { .. }) => continue,
            Ok(TailItem::End) => break Err("the feed never finished, yet an end marker arrived"),
            Err(ServeError::Remote { code, msg }) if code == wire::err::SLOW_CONSUMER => {
                assert!(msg.contains("evicted"), "self-identifying eviction: {msg}");
                break Ok(());
            }
            Err(e) => {
                break Err(
                    Box::leak(format!("wrong eviction error: {e}").into_boxed_str())
                        as &'static str,
                )
            }
        }
    };
    verdict.unwrap_or_else(|why| panic!("{why}"));

    // The server sheds the slow consumer and keeps serving: a fresh
    // from-now subscriber attaches and tails cleanly.
    feed.finish();
    let mut fresh = connect_patiently(server.addr());
    fresh
        .subscribe("firehose", &Predicate::default(), false)
        .expect("fresh subscribe after an eviction");
    let (_, words) = collect_tail(&mut fresh, "post-eviction probe");
    assert!(
        words.is_empty(),
        "a from-now join after finish sees only the marker"
    );
    server.shutdown();
}

#[test]
fn the_retention_bound_evicts_exactly_at_the_bound_and_refuses_stale_replays() {
    let _guard = metrics_lock();
    let a = golden();
    assert!(a.words.len() >= 8192, "golden trace shrank under the test");
    let cfg = ServeCfg {
        sub_retention: 4096,
        ..ServeCfg::default()
    };
    let server = Server::start("127.0.0.1:0", Catalog::new(), cfg).expect("server starts");
    let obs = server.obs().clone();
    let evicted_before = obs.sub_retention_evicted.get();
    let feed = server.live_feed("bounded");

    // A subscriber attached before any eviction: its cursor is pumped
    // to the head under the same lock each publish holds, so the
    // evictions behind it must never cost it a word.
    let mut tail = connect_patiently(server.addr());
    tail.subscribe("bounded", &Predicate::default(), true)
        .expect("subscribe before eviction");

    // Exactly at the bound: nothing is evicted.
    feed.publish(&a.words[..4096]);
    assert_eq!(
        obs.sub_retention_evicted.get(),
        evicted_before,
        "a feed filled to exactly sub_retention evicts nothing"
    );

    // One word past the bound evicts exactly one word...
    feed.publish(&a.words[4096..4097]);
    assert_eq!(
        obs.sub_retention_evicted.get(),
        evicted_before + 1,
        "one word past the bound evicts exactly the overflow"
    );

    // ...and further publishes track the overflow word-for-word.
    feed.publish(&a.words[4097..8192]);
    assert_eq!(
        obs.sub_retention_evicted.get(),
        evicted_before + 4096,
        "eviction count equals total words published past the bound"
    );

    // A from-start join now refuses with the typed error instead of
    // shipping a silently truncated replay.
    let mut stale = connect_patiently(server.addr());
    match stale.subscribe("bounded", &Predicate::default(), true) {
        Err(ServeError::Remote { code, msg }) => {
            assert_eq!(code, wire::err::RETENTION_EVICTED, "{msg}");
            assert!(msg.contains("bounded"), "error names the feed: {msg}");
        }
        other => panic!("from-start after eviction gave {other:?}"),
    }

    // A from-now join still attaches cleanly.
    let mut fresh = connect_patiently(server.addr());
    fresh
        .subscribe("bounded", &Predicate::default(), false)
        .expect("from-now subscribe after eviction");

    feed.finish();
    let (first, words) = collect_tail(&mut tail, "tail spanning evictions");
    assert_eq!(first, Some(0));
    assert_eq!(
        words,
        filter_stream(&a.words, &Predicate::default()),
        "an attached tail is bit-identical across evictions behind it"
    );
    let (_, words) = collect_tail(&mut fresh, "post-eviction from-now");
    assert!(
        words.is_empty(),
        "nothing published after the from-now join"
    );
    server.shutdown();
}

#[test]
fn a_subscribed_connection_refuses_queries_until_it_unsubscribes() {
    let a = golden();
    let mut catalog = Catalog::new();
    catalog.add("golden-store", Arc::new(TraceStore::from_archive(&a, 512)));
    let server = Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("server starts");
    let feed = server.live_feed("golden");
    feed.publish(&a.words[..64]);

    let mut c = connect_patiently(server.addr());
    c.subscribe("golden", &Predicate::default(), true)
        .expect("subscribe");
    // The client guards double-subscription locally.
    assert!(matches!(
        c.subscribe("golden", &Predicate::default(), true),
        Err(ServeError::BadReply(_))
    ));
    c.unsubscribe()
        .expect("unsubscribe discards pending events");

    // The same connection is a query connection again — and the
    // answer is bit-identical to the local filter.
    let pred = Predicate::default();
    let q = c
        .query("golden-store", &pred)
        .expect("query after unsubscribe");
    assert_eq!(q.words, filter_stream(&a.words, &pred));
    feed.finish();
    server.shutdown();
}
