//! Docs-as-contract: `docs/METRICS.md` vs the live registry.
//!
//! The metrics reference is a hand-maintained table, but it is checked
//! mechanically: this test registers every metric in the stack, parses
//! the table, and fails if either side has a row the other lacks or if
//! any name/kind/unit/site/paper cell disagrees. Adding a metric
//! without documenting it (or vice versa) breaks CI.
//!
//! To print a fresh table after adding metrics:
//!
//! ```text
//! cargo test --test metrics_doc_sync print_metrics_table -- --ignored --nocapture
//! ```

use std::collections::BTreeMap;

const DOC_PATH: &str = "docs/METRICS.md";

/// One row of the reference table, keyed the same way as a registry
/// descriptor.
#[derive(Debug, PartialEq, Eq)]
struct Row {
    kind: String,
    unit: String,
    site: String,
    paper: String,
}

/// Extracts `(name, row)` pairs from the markdown table: rows look
/// like `| \`name\` | kind | unit | \`site\` | §x.y | help |`.
fn parse_doc_rows(text: &str) -> BTreeMap<String, Row> {
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 6 {
            continue;
        }
        let unquote = |s: &str| s.trim_matches('`').to_string();
        rows.insert(
            unquote(cells[0]),
            Row {
                kind: cells[1].to_string(),
                unit: cells[2].to_string(),
                site: unquote(cells[3]),
                paper: cells[4].to_string(),
            },
        );
    }
    rows
}

#[test]
fn metrics_doc_matches_registry() {
    systrace::obs::register_all();
    let snap = systrace::obs::global().snapshot();
    assert!(!snap.metrics.is_empty(), "register_all must register");

    let text = std::fs::read_to_string(DOC_PATH).expect("docs/METRICS.md must exist");
    let doc = parse_doc_rows(&text);

    for m in &snap.metrics {
        let row = doc.get(m.desc.name).unwrap_or_else(|| {
            panic!(
                "metric `{}` is registered but missing from {DOC_PATH} — \
                 add a row (see the how-to in that file)",
                m.desc.name
            )
        });
        assert_eq!(row.kind, m.kind.as_str(), "{}: kind", m.desc.name);
        assert_eq!(row.unit, m.desc.unit, "{}: unit", m.desc.name);
        assert_eq!(row.site, m.desc.site, "{}: source site", m.desc.name);
        assert_eq!(row.paper, m.desc.paper, "{}: paper section", m.desc.name);
        assert!(
            std::path::Path::new(m.desc.site).is_file(),
            "{}: source site {} is not a file",
            m.desc.name,
            m.desc.site
        );
    }
    for name in doc.keys() {
        assert!(
            snap.metrics.iter().any(|m| m.desc.name == *name),
            "{DOC_PATH} documents `{name}` but no such metric is registered — \
             remove the row or register the metric"
        );
    }
    assert_eq!(doc.len(), snap.metrics.len());
}

/// Prints the reference table in the exact format `docs/METRICS.md`
/// expects; paste the output over the existing table after adding or
/// changing metrics.
#[test]
#[ignore = "prints the METRICS.md table; run with --ignored --nocapture"]
fn print_metrics_table() {
    systrace::obs::register_all();
    let snap = systrace::obs::global().snapshot();
    println!("| name | kind | unit | source site | paper | description |");
    println!("|------|------|------|-------------|-------|-------------|");
    for m in &snap.metrics {
        println!(
            "| `{}` | {} | {} | `{}` | {} | {} |",
            m.desc.name,
            m.kind.as_str(),
            m.desc.unit,
            m.desc.site,
            m.desc.paper,
            m.desc.help
        );
    }
}
