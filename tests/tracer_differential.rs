//! The tracer differential: a composed one-pass stack is
//! *bit-identical* to dedicated single-analysis passes.
//!
//! * Five ported analyses (cache study, TLB simulation, dilation,
//!   pagemap, defensive checks) composed in one stack vs each run
//!   alone — equal report-for-report, over the in-memory stream and
//!   over stores at block sizes {1, 7, 4096} with 1/2/4 farm
//!   workers (both the farm spread and the sequential fallback).
//! * Grounding against the pre-existing dedicated implementations:
//!   the `cache_sweep` study sink and a raw [`MemSim`] pass.
//! * The three new window analyses pin their golden-trace reports
//!   byte-for-byte (sampled duty-cycle windows, per-ASID working-set
//!   curves, phase change-points).

use systrace::memsim::{AssocCache, MemSim, PageMap, Policy, SimCfg, SpaceKey, UtlbSynth};
use systrace::store::{FarmCfg, TraceStore};
use systrace::trace::{Space, TraceArchive, TraceSink};
use systrace::tracer::{
    analyze_store, analyze_words, build_stack, CacheSink, DefenseSink, DilationSink, PagemapSink,
    SinkReport, Stack, TlbSink,
};

const GOLDEN_PATH: &str = "tests/data/golden.w3kt";

fn golden() -> TraceArchive {
    TraceArchive::load(GOLDEN_PATH).expect("golden archive loads")
}

/// The page-map policy every dedicated pass and every spec-built sink
/// uses (same as `tracedump sim`).
fn pm() -> PageMap {
    PageMap::new(Policy::FirstFree { base_pfn: 0x2000 })
}

fn simcfg() -> SimCfg {
    SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    }
}

/// The five ported analyses, freshly constructed in a fixed order.
fn five() -> Vec<Box<dyn systrace::tracer::AnalysisSink + Send>> {
    vec![
        Box::new(CacheSink::new(65536, 2, pm())),
        Box::new(TlbSink::new(simcfg(), pm())),
        Box::new(DilationSink::default()),
        Box::new(PagemapSink::new(pm())),
        Box::new(DefenseSink::default()),
    ]
}

/// The event-only subset (no word hooks), which lets `analyze_store`
/// spread the sinks over the replay farm.
fn event_only() -> Vec<Box<dyn systrace::tracer::AnalysisSink + Send>> {
    vec![
        Box::new(CacheSink::new(65536, 2, pm())),
        Box::new(TlbSink::new(simcfg(), pm())),
        Box::new(PagemapSink::new(pm())),
        Box::new(DefenseSink::default()),
    ]
}

/// Runs each sink of `make()` alone over the in-memory stream — the
/// dedicated passes the composed run must reproduce exactly.
fn dedicated(
    a: &TraceArchive,
    make: fn() -> Vec<Box<dyn systrace::tracer::AnalysisSink + Send>>,
) -> Vec<SinkReport> {
    make()
        .into_iter()
        .map(|sink| {
            let mut stack = Stack::new();
            stack.push_boxed(sink);
            let mut report = analyze_words(a.parser(), &a.words, stack);
            assert_eq!(report.failed(), 0, "a dedicated pass never fails");
            report.reports.remove(0).expect("no failure")
        })
        .collect()
}

#[test]
fn composed_one_pass_is_bit_identical_to_dedicated_passes() {
    let a = golden();
    let expected = dedicated(&a, five);

    // In-memory composed pass.
    let mut stack = Stack::new();
    for s in five() {
        stack.push_boxed(s);
    }
    let composed = analyze_words(a.parser(), &a.words, stack);
    assert_eq!(composed.failed(), 0);
    assert_eq!(composed.words, a.words.len() as u64);
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(
            composed.ok(i).expect("slot succeeded"),
            want,
            "composed slot {i} diverged from its dedicated pass"
        );
    }
}

#[test]
fn composed_store_passes_match_dedicated_at_every_block_size_and_worker_count() {
    let a = golden();
    let expected_five = dedicated(&a, five);
    let expected_events = dedicated(&a, event_only);

    for block_words in [1usize, 7, 4096] {
        let store = TraceStore::from_archive(&a, block_words);
        for workers in [1usize, 2, 4] {
            let cfg = FarmCfg {
                workers,
                ..FarmCfg::default()
            };
            // The full five-sink stack (dilation wants word hooks, so
            // every worker count runs the sequential one-pass drive).
            let mut stack = Stack::new();
            for s in five() {
                stack.push_boxed(s);
            }
            let report = analyze_store(&store, stack, cfg).expect("store pass succeeds");
            let tag = format!("block={block_words} workers={workers}");
            assert_eq!(report.failed(), 0, "{tag}");
            assert_eq!(report.words, a.words.len() as u64, "{tag}");
            for (i, want) in expected_five.iter().enumerate() {
                assert_eq!(report.ok(i).unwrap(), want, "{tag}: five-stack slot {i}");
            }

            // The event-only stack engages the replay farm at
            // workers > 1; the farm's ordering guarantee must make
            // that spread invisible in the reports.
            let mut stack = Stack::new();
            for s in event_only() {
                stack.push_boxed(s);
            }
            let report = analyze_store(&store, stack, cfg).expect("store pass succeeds");
            assert_eq!(report.failed(), 0, "{tag}");
            for (i, want) in expected_events.iter().enumerate() {
                assert_eq!(report.ok(i).unwrap(), want, "{tag}: event-stack slot {i}");
            }
        }
    }
}

/// The `cache_sweep` study sink, reproduced as in
/// `tests/store_farm.rs`, so [`CacheSink`] is checked against the
/// dedicated implementation it replaces — not just against itself.
#[derive(Debug)]
struct CacheStudy {
    icache: AssocCache,
    dcache: AssocCache,
    pagemap: PageMap,
    cur_asid: u8,
}

impl CacheStudy {
    fn new(size: u32, ways: usize) -> CacheStudy {
        CacheStudy {
            icache: AssocCache::new(size, 16, ways),
            dcache: AssocCache::new(size, 16, ways),
            pagemap: pm(),
            cur_asid: 1,
        }
    }

    fn translate(&mut self, vaddr: u32, space: Space) -> u32 {
        match vaddr {
            0x8000_0000..=0xbfff_ffff => vaddr & 0x1fff_ffff,
            _ => {
                let key = if vaddr >= 0xc000_0000 {
                    SpaceKey::Kernel
                } else {
                    match space {
                        Space::User(a) => SpaceKey::User(a),
                        Space::Kernel => SpaceKey::User(self.cur_asid),
                    }
                };
                self.pagemap.translate(key, vaddr)
            }
        }
    }
}

impl TraceSink for CacheStudy {
    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) {
        let pa = self.translate(vaddr, space);
        self.icache.access(pa);
    }
    fn dref(&mut self, vaddr: u32, _store: bool, _w: systrace::isa::Width, space: Space) {
        let pa = self.translate(vaddr, space);
        self.dcache.access(pa);
    }
    fn ctx_switch(&mut self, asid: u8) {
        self.cur_asid = asid;
    }
}

#[test]
fn cache_sink_matches_the_dedicated_cache_study_across_a_sweep() {
    let a = golden();
    for size in [16u32 << 10, 64 << 10, 256 << 10] {
        for ways in [1usize, 2, 4] {
            let mut study = CacheStudy::new(size, ways);
            a.parser().parse_all(&a.words, &mut study);

            let report = analyze_words(
                a.parser(),
                &a.words,
                Stack::new().with(CacheSink::new(size, ways, pm())),
            );
            let r = report.ok(0).expect("cache slot succeeded");
            let tag = format!("size={size} ways={ways}");
            assert_eq!(
                r.get_u64("icache_accesses"),
                Some(study.icache.accesses),
                "{tag}"
            );
            assert_eq!(
                r.get_u64("icache_misses"),
                Some(study.icache.misses),
                "{tag}"
            );
            assert_eq!(
                r.get_u64("dcache_accesses"),
                Some(study.dcache.accesses),
                "{tag}"
            );
            assert_eq!(
                r.get_u64("dcache_misses"),
                Some(study.dcache.misses),
                "{tag}"
            );
        }
    }
}

#[test]
fn tlb_sink_matches_a_dedicated_memsim_pass_field_for_field() {
    let a = golden();
    let mut sim = MemSim::new(simcfg(), pm());
    a.parser().parse_all(&a.words, &mut sim);

    let report = analyze_words(
        a.parser(),
        &a.words,
        Stack::new().with(TlbSink::new(simcfg(), pm())),
    );
    let r = report.ok(0).expect("tlb slot succeeded");
    let s = &sim.stats;
    for (field, want) in [
        ("user_irefs", s.user_irefs),
        ("kernel_irefs", s.kernel_irefs),
        ("user_drefs", s.user_drefs),
        ("kernel_drefs", s.kernel_drefs),
        ("imisses", s.imisses),
        ("imisses_kernel", s.imisses_kernel),
        ("dmisses", s.dmisses),
        ("dmisses_kernel", s.dmisses_kernel),
        ("uncached", s.uncached),
        ("wb_stall_cycles", s.wb_stall_cycles),
        ("utlb_misses", s.utlb_misses),
        ("synth_irefs", s.synth_irefs),
        ("idle_insts", s.idle_insts),
        ("stores", s.stores),
        ("sanity_violations", s.sanity_violations),
        ("kernel_cycles", s.kernel_cycles),
        ("user_cycles", s.user_cycles),
        ("cycles", sim.cycles),
    ] {
        assert_eq!(r.get_u64(field), Some(want), "{field}");
    }
}

/// The three new window analyses on the golden trace, pinned
/// byte-for-byte (the §3.2 sampled duty cycle, §6 working sets, and
/// window-to-window phase detection). `Value::F64` renders the
/// shortest round-tripping decimal, so these strings are exact.
#[test]
fn golden_window_analyses_pin_their_reports() {
    let a = golden();
    let stack =
        build_stack("sampled:256:768:1,wset:256,phase:256", &pm()).expect("the pinned spec parses");
    let report = analyze_words(a.parser(), &a.words, stack);
    assert_eq!(report.failed(), 0);
    assert_eq!(
        report.render(),
        "\
sink sampled:256:768:1
  windows = 9
  words = 8192
  sampled_words = 2048
  sampled_irefs = 8131
  sampled_drefs = 150
  coverage = 0.25
  est_irefs = 32524.0
  est_drefs = 600.0
sink wset:256
  spaces = 2
  refs = 32607
  pages = 17
  sink asid:1
    windows = 1
    pages = 3
    peak = 3
    mean = 3.0
    refs = 55
  sink kernel
    windows = 128
    pages = 14
    peak = 7
    mean = 1.421875
    refs = 32552
sink phase:256
  windows = 127
  change_points = 8
  mean_distance = 0.057357016880826416
  max_distance = 0.8888888888888888
  cp0 = 1
  cp1 = 80
  cp2 = 81
  cp3 = 83
  cp4 = 86
  cp5 = 116
  cp6 = 118
  cp7 = 119
"
    );
}
