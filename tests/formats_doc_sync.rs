//! Keeps `docs/FORMATS.md` honest: the constants table at the end of
//! the spec is parsed out of the markdown and asserted against the
//! format constants in code, in both directions — a renamed opcode, a
//! resized index entry or a new container version fails here until
//! the byte-level spec says the same thing. Companion to
//! `tests/metrics_doc_sync.rs`, which does the same for the metrics
//! registry.

use std::collections::BTreeMap;

use wrl_fabric::coord::MAX_ENDPOINTS;
use wrl_fabric::{PlanKind, MANIFEST_BLOCK_ENTRY_BYTES, MANIFEST_VERSION, MAX_SHARDS};
use wrl_serve::wire::{err, op, MAX_FRAME, MIN_BODY};
use wrl_store::column::{N_COLUMNS, TAG_SLOTS, VAL_SLOTS};
use wrl_store::{
    BlockMeta, DEFAULT_BLOCK_WORDS, INDEX_ENTRY_BYTES, INDEX_ENTRY_BYTES_V2, INDEX_ENTRY_BYTES_V4,
    STORE_VERSION, STORE_VERSION_V4, TRAILER_BYTES,
};

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FORMATS.md");
    std::fs::read_to_string(path).expect("docs/FORMATS.md exists")
}

/// Parses the `## Constants` table into name → value. Values are
/// decimal or `0x`-prefixed hex.
fn doc_constants(md: &str) -> BTreeMap<String, u64> {
    let section = md
        .split("## Constants")
        .nth(1)
        .expect("FORMATS.md has a Constants section");
    let mut out = BTreeMap::new();
    for line in section.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 3 || !cells[0].starts_with('`') {
            continue;
        }
        let name = cells[0].trim_matches('`').to_string();
        let raw = cells[1];
        let value = match raw.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => raw.parse(),
        }
        .unwrap_or_else(|_| panic!("constant {name} has a non-integer value {raw:?}"));
        assert!(
            out.insert(name.clone(), value).is_none(),
            "constant {name} is listed twice"
        );
    }
    out
}

/// Every format constant the spec must pin, with its code value.
fn code_constants() -> BTreeMap<String, u64> {
    let pairs: &[(&str, u64)] = &[
        ("archive.version.v1", u64::from(wrl_trace::archive::VERSION)),
        ("store.version.v3", u64::from(STORE_VERSION)),
        ("store.version.v4", u64::from(STORE_VERSION_V4)),
        ("store.index_entry_bytes.v2", INDEX_ENTRY_BYTES_V2 as u64),
        ("store.index_entry_bytes.v3", INDEX_ENTRY_BYTES as u64),
        ("store.index_entry_bytes.v4", INDEX_ENTRY_BYTES_V4 as u64),
        ("store.trailer_bytes", TRAILER_BYTES as u64),
        ("store.default_block_words", DEFAULT_BLOCK_WORDS as u64),
        ("store.flag.summary", u64::from(BlockMeta::FLAG_SUMMARY)),
        (
            "store.flag.ctx_switch",
            u64::from(BlockMeta::FLAG_CTX_SWITCH),
        ),
        ("store.flag.daddr", u64::from(BlockMeta::FLAG_DADDR)),
        ("store.flag.columnar", u64::from(BlockMeta::FLAG_COLUMNAR)),
        ("trace.ctl_limit", u64::from(wrl_trace::CTL_LIMIT)),
        ("codec.fcm_slots", wrl_store::codec::FCM_SIZE as u64),
        ("column.n_columns", N_COLUMNS as u64),
        ("column.tag_slots", TAG_SLOTS as u64),
        ("column.val_slots", VAL_SLOTS as u64),
        ("wire.max_frame", MAX_FRAME as u64),
        ("wire.min_body", MIN_BODY as u64),
        ("wire.op.catalog", u64::from(op::CATALOG)),
        ("wire.op.fetch", u64::from(op::FETCH)),
        ("wire.op.query", u64::from(op::QUERY)),
        ("wire.op.metrics", u64::from(op::METRICS)),
        ("wire.op.shards", u64::from(op::SHARDS)),
        ("wire.op.subscribe", u64::from(op::SUBSCRIBE)),
        ("wire.op.unsubscribe", u64::from(op::UNSUBSCRIBE)),
        ("wire.op.response", u64::from(op::RESPONSE)),
        ("wire.op.event", u64::from(op::EVENT)),
        ("wire.op.busy", u64::from(op::BUSY)),
        ("wire.op.error", u64::from(op::ERROR)),
        ("wire.sub_chunk_words", wrl_serve::server::SUB_CHUNK as u64),
        ("wire.err.no_such_archive", u64::from(err::NO_SUCH_ARCHIVE)),
        ("wire.err.bad_request", u64::from(err::BAD_REQUEST)),
        ("wire.err.store", u64::from(err::STORE)),
        ("wire.err.wire", u64::from(err::WIRE)),
        ("wire.err.unavailable", u64::from(err::UNAVAILABLE)),
        ("wire.err.slow_consumer", u64::from(err::SLOW_CONSUMER)),
        (
            "wire.err.retention_evicted",
            u64::from(err::RETENTION_EVICTED),
        ),
        ("manifest.version", u64::from(MANIFEST_VERSION)),
        (
            "manifest.block_entry_bytes",
            MANIFEST_BLOCK_ENTRY_BYTES as u64,
        ),
        ("manifest.max_shards", MAX_SHARDS as u64),
        (
            "manifest.plan.block_range",
            u64::from(PlanKind::BlockRange.code()),
        ),
        (
            "manifest.plan.asid_hash",
            u64::from(PlanKind::AsidHash.code()),
        ),
        ("fabric.max_endpoints", MAX_ENDPOINTS as u64),
    ];
    pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
}

#[test]
fn every_code_constant_is_documented_with_the_right_value() {
    let doc = doc_constants(&doc());
    for (name, value) in code_constants() {
        match doc.get(&name) {
            None => panic!("format constant {name} is missing from docs/FORMATS.md"),
            Some(&d) => assert_eq!(
                d, value,
                "docs/FORMATS.md documents {name} = {d}, code says {value}"
            ),
        }
    }
}

#[test]
fn every_documented_constant_exists_in_code() {
    let code = code_constants();
    for (name, value) in doc_constants(&doc()) {
        match code.get(&name) {
            None => panic!("docs/FORMATS.md documents unknown constant {name}"),
            Some(&c) => assert_eq!(
                c, value,
                "docs/FORMATS.md documents {name} = {value}, code says {c}"
            ),
        }
    }
}

#[test]
fn the_table_covers_the_whole_surface_and_nothing_else() {
    // The two directions above catch value drift; this catches a
    // silently shrunk table (both maps empty would pass them).
    let doc = doc_constants(&doc());
    assert_eq!(doc.len(), code_constants().len());
    assert!(doc.len() >= 30, "expected ≥30 pinned constants");
}

#[test]
fn magic_strings_and_versions_appear_in_the_spec_prose() {
    let md = doc();
    // The magics are strings, not table rows; the spec must state
    // them exactly as the code does.
    assert_eq!(wrl_trace::archive::MAGIC, b"W3KTRACE");
    assert!(md.contains("\"W3KTRACE\""), "container magic missing");
    assert_eq!(wrl_store::container::TAIL_MAGIC, b"W3KSIDX\0");
    assert!(md.contains("\"W3KSIDX\\0\""), "tail magic missing");
    assert_eq!(wrl_serve::wire::WIRE_SCHEMA, "wrl-wire/v1");
    assert!(md.contains("wrl-wire/v1"), "wire schema name missing");
    assert_eq!(wrl_fabric::MANIFEST_MAGIC, b"W3KSHARD");
    assert!(md.contains("\"W3KSHARD\""), "manifest magic missing");
    // Every decodable container version is spelled out in prose.
    for v in ["v1", "v2", "v3", "v4"] {
        assert!(md.contains(v), "version {v} never mentioned");
    }
}
